// Package rowownership machine-enforces the take-ownership contract
// introduced in PR 2 and relied on by the scheduler's arenas ever
// since: implementations of ExecStageBatch(hidden, stage, dst) must
// never write to stage-0 input rows (callers retain raw request
// inputs — the scheduler stopped copying them), while rows for later
// stages may be reused in place. Callers, in turn, must not write
// through the rows they handed over after the call.
//
// The check is a small forward alias analysis over each
// ExecStageBatch body: locals bound to hidden[i] (directly, by range,
// or through re-slicing) are tracked, branch conditions that imply
// stage > 0 downgrade an alias to "guarded", and a write through an
// alias that can still reach a stage-0 input row is reported. Writes
// are index assignments, copy(alias, ...), and passing an alias to a
// parameter named dst or out.
package rowownership

import (
	"go/ast"
	"go/token"
	"go/types"

	"eugene/internal/analysis"
)

// Analyzer enforces the ExecStageBatch input-row ownership contract.
var Analyzer = &analysis.Analyzer{
	Name: "rowownership",
	Doc: `check that ExecStageBatch never writes stage-0 input rows

Implementations of ExecStageBatch(hidden [][]float64, stage int, dst
[][]float64) own the scheduler's hottest contract: stage-0 rows are
caller-retained request inputs and must only be read; stage>0 rows may
be reused in place. A write through an alias of hidden[i] is only
legal on paths where the enclosing conditions imply stage > 0.
Callers must not write through the hidden rows after the call.`,
	Run: run,
}

// alias states, ordered worst-last so merging takes the max.
type state int

const (
	clean        state = iota // does not alias an input row
	aliasGuarded              // aliases an input row only on stage>0 paths
	aliasRaw                  // may alias an input row at stage 0
)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "ExecStageBatch" && matchesContract(pass, fd) {
				checkImpl(pass, fd)
			}
			checkCallers(pass, fd)
		}
	}
	return nil, nil
}

// matchesContract reports whether fd has the ExecStageBatch shape:
// first parameter [][]float64, second int.
func matchesContract(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	params := obj.Signature().Params()
	if params.Len() < 2 {
		return false
	}
	return params.At(0).Type().String() == "[][]float64" &&
		params.At(1).Type().String() == "int"
}

func checkImpl(pass *analysis.Pass, fd *ast.FuncDecl) {
	obj := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	params := obj.Signature().Params()
	c := &checker{
		pass:     pass,
		hidden:   params.At(0),
		stage:    params.At(1),
		reported: map[token.Pos]bool{},
	}
	c.stmts(fd.Body.List, env{}, false)
}

type env map[types.Object]state

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// merge folds the branch result b into e, taking the worse state and
// applying the branch guard: an alias that is raw at the end of a
// stage>0-guarded branch only exists on stage>0 executions, so it
// merges as guarded.
func (e env) merge(b env, branchGuarded bool) {
	for k, v := range b {
		if branchGuarded && v == aliasRaw {
			v = aliasGuarded
		}
		if v > e[k] {
			e[k] = v
		}
	}
}

type checker struct {
	pass     *analysis.Pass
	hidden   types.Object // the hidden [][]float64 parameter
	stage    types.Object // the stage int parameter
	reported map[token.Pos]bool
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// stmts walks a statement list, threading the alias environment.
// guarded is true when every path reaching these statements has
// established stage > 0.
func (c *checker) stmts(list []ast.Stmt, e env, guarded bool) {
	for _, s := range list {
		c.stmt(s, e, guarded)
	}
}

func (c *checker) stmt(s ast.Stmt, e env, guarded bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.exprWrites(rhs, e, guarded)
		}
		for _, lhs := range s.Lhs {
			c.checkWriteTarget(lhs, e, guarded)
		}
		// Update bindings after checking the writes.
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.objOf(id)
				if obj == nil {
					continue
				}
				st := c.classify(s.Rhs[i], e, guarded)
				if _, tracked := e[obj]; tracked || st != clean {
					e[obj] = st
				}
			}
		}
	case *ast.ExprStmt:
		c.exprWrites(s.X, e, guarded)
	case *ast.DeferStmt:
		c.exprWrites(s.Call, e, guarded)
	case *ast.GoStmt:
		c.exprWrites(s.Call, e, guarded)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.exprWrites(r, e, guarded)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						c.exprWrites(vs.Values[i], e, guarded)
						if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
							if st := c.classify(vs.Values[i], e, guarded); st != clean {
								e[obj] = st
							}
						}
					}
				}
			}
		}
	case *ast.BlockStmt:
		c.stmts(s.List, e, guarded)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, e, guarded)
		}
		c.exprWrites(s.Cond, e, guarded)
		thenGuard := guarded || impliesStagePositive(c.pass, c.stage, s.Cond)
		thenEnv := e.clone()
		c.stmt(s.Body, thenEnv, thenGuard)
		elseEnv := e.clone()
		if s.Else != nil {
			c.stmt(s.Else, elseEnv, guarded)
		}
		merged := env{}
		merged.merge(thenEnv, thenGuard)
		merged.merge(elseEnv, guarded)
		for k := range e {
			delete(e, k)
		}
		e.merge(merged, false)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, e, guarded)
		}
		merged := env{}
		hasDefault := false
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			caseGuard := guarded
			if s.Tag == nil && len(cc.List) > 0 {
				all := true
				for _, cond := range cc.List {
					c.exprWrites(cond, e, guarded)
					if !impliesStagePositive(c.pass, c.stage, cond) {
						all = false
					}
				}
				caseGuard = guarded || all
			}
			if cc.List == nil {
				hasDefault = true
			}
			caseEnv := e.clone()
			c.stmts(cc.Body, caseEnv, caseGuard)
			merged.merge(caseEnv, caseGuard)
		}
		if !hasDefault {
			merged.merge(e, guarded) // fall-through path
		}
		for k := range e {
			delete(e, k)
		}
		e.merge(merged, false)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, e, guarded)
		}
		if s.Cond != nil {
			c.exprWrites(s.Cond, e, guarded)
		}
		// Two passes so aliases bound in one iteration are visible to
		// writes in the next; reports are deduplicated.
		for range 2 {
			bodyEnv := e.clone()
			c.stmt(s.Body, bodyEnv, guarded)
			if s.Post != nil {
				c.stmt(s.Post, bodyEnv, guarded)
			}
			e.merge(bodyEnv, false)
		}
	case *ast.RangeStmt:
		c.exprWrites(s.X, e, guarded)
		rangesInput := c.isHidden(s.X)
		for range 2 {
			bodyEnv := e.clone()
			if rangesInput && s.Value != nil {
				if id, ok := ast.Unparen(s.Value).(*ast.Ident); ok {
					if obj := c.objOf(id); obj != nil {
						bodyEnv[obj] = rowState(guarded)
					}
				}
			}
			c.stmt(s.Body, bodyEnv, guarded)
			e.merge(bodyEnv, false)
		}
	case *ast.IncDecStmt:
		c.checkWriteTarget(s.X, e, guarded)
	}
}

// rowState is the state of a fresh input-row alias created under the
// current guard.
func rowState(guarded bool) state {
	if guarded {
		return aliasGuarded
	}
	return aliasRaw
}

// classify determines what an expression aliases.
func (c *checker) classify(x ast.Expr, e env, guarded bool) state {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		if obj := c.objOf(x); obj != nil {
			return e[obj]
		}
	case *ast.IndexExpr:
		if c.isHidden(x.X) {
			return rowState(guarded)
		}
	case *ast.SliceExpr:
		return c.classify(x.X, e, guarded)
	}
	return clean
}

// checkWriteTarget flags assignment targets that write through an
// input-row alias: row[j] = v, hidden[i][j] = v.
func (c *checker) checkWriteTarget(lhs ast.Expr, e env, guarded bool) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	c.checkRowWrite(ix.X, e, guarded, ix.Pos(), "element write")
}

// checkRowWrite reports if row (an expression) may alias a stage-0
// input row here.
func (c *checker) checkRowWrite(row ast.Expr, e env, guarded bool, pos token.Pos, op string) {
	if c.classify(row, e, guarded) == aliasRaw && !guarded {
		c.report(pos, "%s may modify a stage-0 input row of ExecStageBatch: callers retain raw inputs, writes are only legal under a stage > 0 guard", op)
	}
}

// exprWrites scans an expression tree for call-based writes: the copy
// builtin and calls whose parameter is named dst or out.
func (c *checker) exprWrites(x ast.Expr, e env, guarded bool) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" && len(call.Args) == 2 {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				c.checkRowWrite(call.Args[0], e, guarded, call.Pos(), "copy into")
				return true
			}
		}
		sig := calleeSignature(c.pass, call)
		if sig == nil {
			return true
		}
		for i, arg := range call.Args {
			if i >= sig.Params().Len() {
				break
			}
			p := sig.Params().At(i)
			if name := p.Name(); name == "dst" || name == "out" {
				if _, isSlice := p.Type().Underlying().(*types.Slice); isSlice {
					c.checkRowWrite(arg, e, guarded, arg.Pos(), "passing as "+name+" to "+calleeName(call))
				}
			}
		}
		return true
	})
}

// checkCallers flags writes through the hidden rows after an
// ExecStageBatch call in the same function: the callee may still hold
// (or have returned) those rows, and stage-0 callers retain raw
// request inputs.
func checkCallers(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Find ExecStageBatch call sites and the object passed as hidden.
	type site struct {
		obj types.Object
		end token.Pos
	}
	var sites []site
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "ExecStageBatch" {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				sites = append(sites, site{obj: obj, end: call.End()})
			}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			// rows[i][j] = v after the call: the inner index base must
			// itself be an index over the handed-over slice.
			inner, ok := ast.Unparen(ix.X).(*ast.IndexExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(inner.X).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				continue
			}
			for _, s := range sites {
				if s.obj == obj && ix.Pos() > s.end {
					pass.Reportf(ix.Pos(), "write to a row of %s after passing it to ExecStageBatch: the executor and its arenas may still reference these rows", id.Name)
				}
			}
		}
		return true
	})
}

// objOf resolves an identifier to its object (definition or use).
func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// isHidden reports whether x denotes the hidden parameter.
func (c *checker) isHidden(x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	return ok && c.objOf(id) == c.hidden
}

// impliesStagePositive reports whether cond guarantees stage > 0.
func impliesStagePositive(pass *analysis.Pass, stage types.Object, cond ast.Expr) bool {
	switch b := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch b.Op {
		case token.LAND:
			return impliesStagePositive(pass, stage, b.X) || impliesStagePositive(pass, stage, b.Y)
		case token.LOR:
			return impliesStagePositive(pass, stage, b.X) && impliesStagePositive(pass, stage, b.Y)
		case token.GTR: // stage > 0
			return isStageIdent(pass, stage, b.X) && isIntLit(b.Y, 0)
		case token.GEQ: // stage >= 1
			return isStageIdent(pass, stage, b.X) && isIntLit(b.Y, 1)
		case token.LSS: // 0 < stage
			return isIntLit(b.X, 0) && isStageIdent(pass, stage, b.Y)
		case token.LEQ: // 1 <= stage
			return isIntLit(b.X, 1) && isStageIdent(pass, stage, b.Y)
		case token.NEQ: // stage != 0 (stage is validated non-negative)
			return (isStageIdent(pass, stage, b.X) && isIntLit(b.Y, 0)) ||
				(isIntLit(b.X, 0) && isStageIdent(pass, stage, b.Y))
		}
	}
	return false
}

func isStageIdent(pass *analysis.Pass, stage types.Object, x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == stage
}

func isIntLit(x ast.Expr, v int64) bool {
	tv, ok := x.(*ast.BasicLit)
	if !ok {
		return false
	}
	return tv.Value == "0" && v == 0 || tv.Value == "1" && v == 1
}

// calleeSignature returns the signature of a call's static callee.
func calleeSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn.Signature()
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn.Signature()
		}
	}
	return nil
}

// calleeName renders the callee for diagnostics.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}
