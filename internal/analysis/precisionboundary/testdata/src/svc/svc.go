package svc

// Serve is float64-only API: fine anywhere.
func Serve(x []float64) []float64 { return x }

func Widen32(x []float32) []float64 { return nil } // want `exported Widen32 has float32 in its signature`

type Config struct {
	Rate  float64
	Gains []float32 // want `exported field Config.Gains has type containing float32`
}

type Kernel32 func([]float32) // want `exported type Kernel32 is defined in terms of float32`

var Table []float32 // want `exported Table has type containing float32`

// Unexported API may use float32 freely: conversions at the boundary
// happen inside unexported helpers.
func narrow(x []float64) []float32 { return nil }

type scratch struct{ f []float32 }

// Methods on unexported types are not public API.
func (s *scratch) Apply(x []float32) {}

var _ = narrow
