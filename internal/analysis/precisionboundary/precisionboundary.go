// Package precisionboundary keeps the scheduler precision-blind: the
// f32 (and soon int8) serving tiers live entirely behind the float64
// ExecStageBatch boundary, so float32 values and the *32 kernel types
// must not leak into exported signatures outside the packages that
// own them (internal/tensor, internal/nn, internal/staged,
// internal/snapshot). Everything else — sched, core, service, cache,
// cmd — exchanges float64 only, which is what lets a new precision
// tier land without touching the scheduler or its arenas.
package precisionboundary

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"eugene/internal/analysis"
)

// Analyzer flags float32-typed exported API outside the precision
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "precisionboundary",
	Doc: `forbid float32/Matrix32 types in exported API outside the precision packages

Exported functions, methods, struct fields, variables, and type
definitions outside internal/tensor, internal/nn, internal/staged, and
internal/snapshot must not mention float32, complex64, or the *32
types those packages define (Matrix32, Program32, Frozen32, ...). The
scheduler and service layers stay precision-blind behind the float64
ExecStageBatch contract.`,
	Run: run,
}

// allowed are the package-path suffixes where f32 types are at home.
var allowed = []string{
	"internal/tensor",
	"internal/nn",
	"internal/staged",
	"internal/snapshot",
	"internal/analysis", // the analyzers talk about these types by name
}

// ownerPkgs are the packages whose exported *32 named types are
// treated as precision-tier types wherever they appear.
var ownerPkgs = map[string]bool{}

func init() {
	for _, a := range allowed {
		ownerPkgs["eugene/"+a] = true
	}
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	for _, a := range allowed {
		if path == a || strings.HasSuffix(path, a) || strings.Contains(path, a+"/") {
			return nil, nil
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						checkType(pass, s)
					case *ast.ValueSpec:
						checkValue(pass, s)
					}
				}
			}
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	obj, ok := pass.TypesInfo.Defs[d.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Signature()
	// Methods on unexported types are not public API.
	if recv := sig.Recv(); recv != nil && !exportedReceiver(recv.Type()) {
		return
	}
	if bad := findF32(sig); bad != "" {
		pass.Reportf(d.Name.Pos(), "exported %s has %s in its signature: float32 types must stay behind the float64 ExecStageBatch boundary (allowed only in %s)",
			d.Name.Name, bad, strings.Join(allowed[:4], ", "))
	}
}

func checkType(pass *analysis.Pass, s *ast.TypeSpec) {
	if !s.Name.IsExported() {
		return
	}
	obj := pass.TypesInfo.Defs[s.Name]
	if obj == nil {
		return
	}
	// For a struct, only exported fields are API; for other types the
	// whole definition is.
	if st, ok := obj.Type().Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			if bad := findF32(f.Type()); bad != "" {
				pass.Reportf(f.Pos(), "exported field %s.%s has type containing %s: float32 types must stay behind the float64 ExecStageBatch boundary",
					s.Name.Name, f.Name(), bad)
			}
		}
		return
	}
	if bad := findF32(obj.Type().Underlying()); bad != "" {
		pass.Reportf(s.Name.Pos(), "exported type %s is defined in terms of %s: float32 types must stay behind the float64 ExecStageBatch boundary", s.Name.Name, bad)
	}
}

func checkValue(pass *analysis.Pass, s *ast.ValueSpec) {
	for _, name := range s.Names {
		if !name.IsExported() {
			continue
		}
		obj := pass.TypesInfo.Defs[name]
		if obj == nil {
			continue
		}
		if bad := findF32(obj.Type()); bad != "" {
			pass.Reportf(name.Pos(), "exported %s has type containing %s: float32 types must stay behind the float64 ExecStageBatch boundary", name.Name, bad)
		}
	}
}

// exportedReceiver reports whether the receiver's named type is
// exported.
func exportedReceiver(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Exported()
	}
	return true
}

// findF32 walks a type and returns a description of the first
// precision-tier component found, or "".
func findF32(t types.Type) string {
	return find(t, map[types.Type]bool{})
}

func find(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.Float32:
			return "float32"
		case types.Complex64:
			return "complex64"
		}
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && ownerPkgs[obj.Pkg().Path()] && strings.Contains(obj.Name(), "32") {
			return fmt.Sprintf("%s.%s", obj.Pkg().Name(), obj.Name())
		}
		// Do not expand foreign named types (time.Time etc.).
	case *types.Pointer:
		return find(t.Elem(), seen)
	case *types.Slice:
		return find(t.Elem(), seen)
	case *types.Array:
		return find(t.Elem(), seen)
	case *types.Map:
		if s := find(t.Key(), seen); s != "" {
			return s
		}
		return find(t.Elem(), seen)
	case *types.Chan:
		return find(t.Elem(), seen)
	case *types.Signature:
		if s := find(t.Params(), seen); s != "" {
			return s
		}
		return find(t.Results(), seen)
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if s := find(t.At(i).Type(), seen); s != "" {
				return s
			}
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if s := find(t.Field(i).Type(), seen); s != "" {
				return s
			}
		}
	case *types.Interface:
		for i := 0; i < t.NumMethods(); i++ {
			if s := find(t.Method(i).Type(), seen); s != "" {
				return s
			}
		}
	}
	return ""
}
