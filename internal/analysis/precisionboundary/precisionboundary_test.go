package precisionboundary_test

import (
	"testing"

	"eugene/internal/analysis/analysistest"
	"eugene/internal/analysis/precisionboundary"
)

func TestPrecisionBoundary(t *testing.T) {
	analysistest.Run(t, "testdata", precisionboundary.Analyzer, "svc")
}
