// Package analysis is Eugene's in-tree counterpart of
// golang.org/x/tools/go/analysis: the minimal Analyzer/Pass/Diagnostic
// surface the repo's custom vet checks build on, implemented entirely
// on the standard library so the module keeps zero dependencies.
//
// The analyzers in the subpackages machine-enforce invariants that
// previously lived only in comments and reviewer memory — the
// take-ownership contract on stage-0 hidden rows, the atomic-only
// access discipline on concurrently-read fields, the sync.Pool arena
// pairing in the scheduler, the float64 precision boundary around the
// scheduler, and the scalar-fallback parity of every asm kernel. See
// cmd/eugenevet for the driver (standalone and `go vet -vettool`
// modes) and CONTRIBUTING.md for the invariant-to-analyzer map.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer is one static check. Name must be a valid identifier (it
// doubles as the driver's enable/disable flag name and the key in
// //lint:ignore directives); Doc's first line is the one-line summary
// printed by `eugenevet -list`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with one type-checked package and a
// sink for diagnostics, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dir is the package's source directory. IgnoredFiles lists .go
	// files in Dir excluded by build constraints; analyzers that must
	// reason across build-tag boundaries (asmparity) parse them with
	// Fset so their positions stay valid.
	Dir          string
	IgnoredFiles []string

	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned in the Pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Validate rejects duplicate or unnamed analyzers before a driver runs
// them (flag names and ignore directives key on Name).
func Validate(analyzers []*Analyzer) error {
	seen := map[string]bool{}
	for _, a := range analyzers {
		switch {
		case a.Name == "":
			return fmt.Errorf("analysis: analyzer with empty name (doc %.40q)", a.Doc)
		case a.Run == nil:
			return fmt.Errorf("analysis: analyzer %s has no Run", a.Name)
		case seen[a.Name]:
			return fmt.Errorf("analysis: duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// ignoreRe matches staticcheck-style suppression directives:
//
//	//lint:ignore analyzer1,analyzer2 reason the check does not apply
//
// The directive must carry a non-empty justification. It suppresses
// matching diagnostics on its own line (trailing-comment placement)
// and on the line below (standalone placement above the statement).
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+(.+)$`)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int // line the comment is on
	analyzers []string
	pos       token.Pos
	used      bool // a diagnostic matched since parsing
}

func (d *ignoreDirective) matches(name string, file string, line int) bool {
	if d.file != file || (line != d.line && line != d.line+1) {
		return false
	}
	for _, a := range d.analyzers {
		if a == name || a == "*" {
			return true
		}
	}
	return false
}

// Suppressor filters diagnostics through the //lint:ignore directives
// of a package's files. Drivers build one per package and apply it to
// every analyzer's output so suppression behaves identically in
// standalone and `go vet -vettool` runs.
type Suppressor struct {
	directives []ignoreDirective
}

// NewSuppressor collects the ignore directives from files.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				s.directives = append(s.directives, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(m[1], ","),
					pos:       c.Pos(),
				})
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by an ignore directive, marking every covering
// directive as used for Audit.
func (s *Suppressor) Suppressed(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	hit := false
	for i := range s.directives {
		if s.directives[i].matches(name, p.Filename, p.Line) {
			s.directives[i].used = true
			hit = true
		}
	}
	return hit
}

// Audit reports the directives that cannot be justified after every
// analyzer in ran has been applied through this Suppressor: directives
// naming an analyzer outside the suite (a typo silently suppresses
// nothing, or worse, a future analyzer), and stale directives none of
// whose named analyzers produced a diagnostic to suppress — the code
// they excused has been fixed or rewritten, and keeping them would
// blind the next genuine finding on that line. A directive is only
// called stale when every analyzer it names was actually run (suite
// lists every analyzer that exists, ran the subset applied through this
// Suppressor), so partial runs (-<analyzer>=false) never misreport.
// Wildcard ("*") directives are exempt from staleness but still
// reported here as unauditable: they must name their analyzers.
func (s *Suppressor) Audit(suite, ran []*Analyzer, report func(Diagnostic)) {
	known := map[string]bool{}
	for _, a := range suite {
		known[a.Name] = true
	}
	applied := map[string]bool{}
	for _, a := range ran {
		applied[a.Name] = true
	}
	for i := range s.directives {
		d := &s.directives[i]
		var unknown []string
		wildcard := false
		allRan := true
		for _, name := range d.analyzers {
			switch {
			case name == "*":
				wildcard = true
			case !known[name]:
				unknown = append(unknown, name)
				allRan = false
			case !applied[name]:
				allRan = false
			}
		}
		switch {
		case wildcard:
			report(Diagnostic{Pos: d.pos, Message: "lint:ignore * suppresses every analyzer and cannot be audited; name the analyzers being suppressed"})
		case len(unknown) > 0:
			report(Diagnostic{Pos: d.pos, Message: fmt.Sprintf("lint:ignore names unknown analyzer(s) %s; it suppresses nothing", strings.Join(unknown, ", "))})
		case allRan && !d.used:
			report(Diagnostic{Pos: d.pos, Message: fmt.Sprintf("stale lint:ignore: %s no longer report anything here; delete the directive", strings.Join(d.analyzers, ", "))})
		}
	}
}
