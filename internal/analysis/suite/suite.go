// Package suite registers the repo's analyzers in the order they are
// run by cmd/eugenevet.
package suite

import (
	"eugene/internal/analysis"
	"eugene/internal/analysis/asmparity"
	"eugene/internal/analysis/atomicfield"
	"eugene/internal/analysis/blockinlock"
	"eugene/internal/analysis/goroutineleak"
	"eugene/internal/analysis/hotpathalloc"
	"eugene/internal/analysis/lockorder"
	"eugene/internal/analysis/poolput"
	"eugene/internal/analysis/precisionboundary"
	"eugene/internal/analysis/retryctx"
	"eugene/internal/analysis/rowownership"
	"eugene/internal/analysis/uncheckederr"
)

// All returns every analyzer in the suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		poolput.Analyzer,
		rowownership.Analyzer,
		precisionboundary.Analyzer,
		asmparity.Analyzer,
		uncheckederr.Analyzer,
		retryctx.Analyzer,
		lockorder.Analyzer,
		blockinlock.Analyzer,
		hotpathalloc.Analyzer,
		goroutineleak.Analyzer,
	}
}
