package uncheckederr_test

import (
	"testing"

	"eugene/internal/analysis/analysistest"
	"eugene/internal/analysis/uncheckederr"
)

func TestUncheckedErr(t *testing.T) {
	analysistest.Run(t, "testdata", uncheckederr.Analyzer, "a")
}
