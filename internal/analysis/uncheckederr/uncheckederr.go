// Package uncheckederr flags call statements that silently drop an
// error result. The snapshot save path and the service shutdown path
// both had best-effort cleanups that looked identical to forgotten
// checks; this analyzer forces the distinction to be written down —
// either check the error, assign it to _, or carry a //lint:ignore
// uncheckederr comment saying why dropping it is correct.
package uncheckederr

import (
	"go/ast"
	"go/types"

	"eugene/internal/analysis"
)

// Analyzer reports discarded error results.
var Analyzer = &analysis.Analyzer{
	Name: "uncheckederr",
	Doc: `report call statements that discard an error result

A function call used as a statement whose last result is an error
discards that error invisibly. Either handle it, assign it away
explicitly (_ = f()), or annotate the deliberate drop:

	//lint:ignore uncheckederr best-effort cleanup, error already reported

Deferred calls and calls inside deferred closures are exempt (deferred
cleanup has nowhere to report), as are fmt.Print* and the never-failing
bytes.Buffer / strings.Builder writers.`,
	Run: run,
}

// exemptFuncs never meaningfully fail.
var exemptFuncs = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

// exemptRecvs are receiver types whose methods are documented never to
// return a non-nil error.
var exemptRecvs = map[string]bool{
	"bytes.Buffer":      true,
	"strings.Builder":   true,
	"hash.Hash":         true,
	"hash.Hash32":       true,
	"hash.Hash64":       true,
	"math/rand.Rand":    true,
	"math/rand/v2.Rand": true,
}

func run(pass *analysis.Pass) (any, error) {
	// Deferred function literals are exempt wholesale: collect their
	// bodies first.
	deferred := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			d, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				deferred[fl.Body] = true
			}
			return true
		})
	}

	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			s, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(s.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || isExempt(pass, call) {
				return true
			}
			for _, anc := range stack {
				if deferred[anc] {
					return true
				}
			}
			pass.Reportf(call.Pos(), "error result of %s is discarded: handle it, assign to _, or add //lint:ignore uncheckederr <reason>", callName(call))
			return true
		})
	}
	return nil, nil
}

// returnsError reports whether the call's only or last result is an
// error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	last := tv.Type
	if tup, ok := tv.Type.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		last = tup.At(tup.Len() - 1).Type()
	}
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isExempt applies the allowlists.
func isExempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && exemptFuncs[fn.Pkg().Path()+"."+fn.Name()] {
		return true
	}
	if fn.Signature().Recv() == nil {
		return false
	}
	// Key the exemption on the receiver expression's static type (not
	// the declared receiver, which for interface methods is the
	// embedded interface, e.g. io.Writer inside hash.Hash32).
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return exemptRecvs[n.Obj().Pkg().Path()+"."+n.Obj().Name()]
	}
	return false
}

// callName renders a short name for the called function.
func callName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
