package a

import (
	"bytes"
	"fmt"
	"os"
)

// publish reproduces the pre-fix shape of internal/snapshot's
// saveAtomic: the cleanup Remove on the failed-rename path silently
// dropped its error until the suite surfaced it.
func publish(tmp, path string) error {
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) // want `error result of os.Remove is discarded`
		return err
	}
	return nil
}

func checked(name string) {
	if err := os.Remove(name); err != nil {
		fmt.Println(err)
	}
	_ = os.Remove(name)
}

func annotated(name string) {
	//lint:ignore uncheckederr best-effort cleanup, the file is orphaned either way
	os.Remove(name)
}

func deferred(name string) {
	defer os.Remove(name)
	defer func() {
		os.Remove(name)
	}()
}

func exempt(buf *bytes.Buffer) {
	fmt.Println("hello")
	buf.WriteString("x")
}
