package poolput_test

import (
	"testing"

	"eugene/internal/analysis/analysistest"
	"eugene/internal/analysis/poolput"
)

func TestPoolPut(t *testing.T) {
	analysistest.Run(t, "testdata", poolput.Analyzer, "a")
}
