package a

import "sync"

type holder struct {
	buf []byte
}

var stash *holder

type arena struct {
	pool  sync.Pool
	leaky sync.Pool
}

// good: Get/Put paired, resetting the pooled object's own field is the
// normal recycle pattern.
func (a *arena) good() {
	h := a.pool.Get().(*holder)
	h.buf = h.buf[:0]
	a.pool.Put(h)
}

// drop: the Get result vanishes, and leaky has no Put anywhere.
func (a *arena) drop() {
	a.leaky.Get() // want `result of leaky.Get is discarded` `sync.Pool leaky has Get calls but no Put`
}

var keep = sync.Pool{New: func() any { return &holder{} }}

type registry struct {
	last *holder
}

func escape() {
	h := keep.Get().(*holder)
	stash = h // want `pooled object h escapes into package-level variable stash`
	keep.Put(h)
}

func (r *registry) fieldEscape() {
	h, ok := keep.Get().(*holder)
	if !ok {
		return
	}
	r.last = h // want `pooled object h escapes into field last`
	keep.Put(h)
}
