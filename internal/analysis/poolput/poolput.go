// Package poolput guards the sync.Pool arena discipline that got the
// scheduler to ~0 allocs/req: every pool that is drawn from must also
// be refilled, a Get result must actually be used, and pooled objects
// must not escape into long-lived storage where they would defeat (or
// corrupt, once recycled) the pool.
package poolput

import (
	"go/ast"
	"go/types"

	"eugene/internal/analysis"
)

// Analyzer flags sync.Pool usage that breaks the arena discipline.
var Analyzer = &analysis.Analyzer{
	Name: "poolput",
	Doc: `check sync.Pool Get/Put pairing and pooled-object escape

Three rules, per package:

 1. a sync.Pool variable or field with a Get call must have a Put call
    on the same pool somewhere in the package (pools are identified by
    the variable or struct field holding them);
 2. the result of pool.Get() must not be discarded;
 3. a value obtained from pool.Get() must not be stored into a
    package-level variable or into a field of another value — pooled
    objects are owned until Put and must not leak into long-lived
    structures.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	type poolUse struct {
		gets []ast.Node // positions of Get calls
		puts int
	}
	uses := map[types.Object]*poolUse{}
	use := func(obj types.Object) *poolUse {
		u := uses[obj]
		if u == nil {
			u = &poolUse{}
			uses[obj] = u
		}
		return u
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, pool := poolMethod(pass, call)
			if pool == nil {
				return true
			}
			switch name {
			case "Get":
				use(pool).gets = append(use(pool).gets, call)
			case "Put":
				use(pool).puts++
			}
			return true
		})
	}
	for obj, u := range uses {
		if len(u.gets) > 0 && u.puts == 0 {
			pass.Reportf(u.gets[0].Pos(), "sync.Pool %s has Get calls but no Put in this package (pool leak: objects are never recycled)", obj.Name())
		}
	}

	// Per-function rules: discarded Get results and escapes.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// checkFunc applies the discard and escape rules inside one function
// body (including function literals, which ast.Inspect descends into).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// pooled tracks locals bound to a Get result in this body.
	pooled := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if name, pool := poolMethod(pass, call); pool != nil && name == "Get" {
					pass.Reportf(call.Pos(), "result of %s.Get is discarded: the pooled object is lost without a Put", pool.Name())
				}
			}
		case *ast.AssignStmt:
			// Bind locals initialized from Get (possibly through a type
			// assertion): t := pool.Get().(*T), or t, ok := ...
			if len(s.Rhs) == 1 && fromPoolGet(pass, s.Rhs[0]) {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						pooled[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						pooled[obj] = true
					}
				}
				return true
			}
			// Escape rule: a pooled local on the RHS stored into a
			// package-level var or a field of some other value.
			for i, rhs := range s.Rhs {
				src := escapingPooled(pass, pooled, rhs)
				if src == nil || i >= len(s.Lhs) {
					continue
				}
				if dst := longLivedDest(pass, pooled, s.Lhs[i]); dst != "" {
					pass.Reportf(rhs.Pos(), "pooled object %s escapes into %s: pool objects must not outlive their Get/Put window", src.Name(), dst)
				}
			}
		}
		return true
	})
}

// fromPoolGet reports whether expr is pool.Get() or a type assertion
// over it.
func fromPoolGet(pass *analysis.Pass, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		name, pool := poolMethod(pass, e)
		return pool != nil && name == "Get"
	case *ast.TypeAssertExpr:
		return fromPoolGet(pass, e.X)
	}
	return false
}

// escapingPooled returns the pooled local referenced bare (or via
// append) in rhs, if any.
func escapingPooled(pass *analysis.Pass, pooled map[types.Object]bool, rhs ast.Expr) types.Object {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil && pooled[obj] {
			return obj
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			for _, arg := range e.Args[1:] {
				if obj := escapingPooled(pass, pooled, arg); obj != nil {
					return obj
				}
			}
		}
	}
	return nil
}

// longLivedDest classifies an assignment destination as long-lived:
// a package-level variable, or a field selector whose base is not the
// pooled object itself (writing t.state = x into the pooled t is the
// normal reset pattern and allowed).
func longLivedDest(pass *analysis.Pass, pooled map[types.Object]bool, lhs ast.Expr) string {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return "package-level variable " + v.Name()
			}
		}
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[base]; obj != nil && pooled[obj] {
				return "" // resetting a field of the pooled object itself
			}
		}
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return "field " + e.Sel.Name
		}
	case *ast.IndexExpr:
		// Storing into a map or slice cell: long-lived if the container
		// is itself long-lived; conservatively treat package-level
		// containers as escapes.
		return longLivedDest(pass, pooled, e.X)
	}
	return ""
}

// poolMethod matches recv.Get / recv.Put method calls on sync.Pool
// values and returns the method name and the variable or field object
// identifying the pool.
func poolMethod(pass *analysis.Pass, call *ast.CallExpr) (string, types.Object) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
		return "", nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", nil
	}
	recv := fn.Signature().Recv()
	if recv == nil || !isSyncPool(recv.Type()) {
		return "", nil
	}
	// Identify the pool by the variable or field the receiver resolves
	// to: l.taskPool.Get() → field taskPool; encodePool.Get() → var.
	switch r := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[r]; ok && s.Kind() == types.FieldVal {
			return sel.Sel.Name, s.Obj()
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[r]; obj != nil {
			return sel.Sel.Name, obj
		}
	case *ast.UnaryExpr:
		return poolMethodBase(pass, sel.Sel.Name, r.X)
	}
	return "", nil
}

func poolMethodBase(pass *analysis.Pass, name string, expr ast.Expr) (string, types.Object) {
	switch r := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[r]; ok && s.Kind() == types.FieldVal {
			return name, s.Obj()
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[r]; obj != nil {
			return name, obj
		}
	}
	return "", nil
}

// isSyncPool reports whether t (or *t) is sync.Pool.
func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
