// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library alone.
//
// A want comment annotates the line it trails with one or more quoted
// regular expressions, each of which must be matched by exactly one
// diagnostic reported on that line:
//
//	pool.Get() // want `result of .*Get is discarded`
//
// Unmatched want patterns and unexpected diagnostics both fail the
// test, so a fixture with seeded violations fails if its analyzer is
// disabled or regresses.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"eugene/internal/analysis"
	"eugene/internal/analysis/load"
)

// Run analyzes each fixture package (a directory under
// testdata/src/<pkg>) and reports mismatches against its want
// comments on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, testdata, a, pkg)
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: reading fixture dir: %v", a.Name, err)
	}
	var selected, ignored []string
	ctx := build.Default
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		ok, err := ctx.MatchFile(dir, e.Name())
		if err != nil {
			t.Fatalf("%s: matching %s: %v", a.Name, e.Name(), err)
		}
		if ok {
			selected = append(selected, filepath.Join(dir, e.Name()))
		} else {
			ignored = append(ignored, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(selected)
	sort.Strings(ignored)
	if len(selected) == 0 {
		t.Fatalf("%s: fixture %s has no buildable Go files", a.Name, pkg)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, path := range selected {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			importSet[p] = true
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	imp, err := load.StdImporter(fset, dir, imports)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	info := load.NewInfo()
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("%s: type-checking fixture %s: %v", a.Name, pkg, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:     a,
		Fset:         fset,
		Files:        files,
		Pkg:          tpkg,
		TypesInfo:    info,
		Dir:          dir,
		IgnoredFiles: ignored,
		Report:       func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	// Apply //lint:ignore suppression exactly as the drivers do, so
	// fixtures can assert that annotated drops stay silent.
	sup := analysis.NewSuppressor(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.Suppressed(fset, a.Name, d.Pos) {
			kept = append(kept, d)
		}
	}
	diags = kept

	wants := collectWants(t, a.Name, fset, files, ignored)
	checkDiags(t, a.Name, fset, diags, wants)
}

// want is one expected-diagnostic pattern.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// collectWants parses `// want` comments from the type-checked files
// and from the build-tag-excluded fixture files (asmparity reports
// into those).
func collectWants(t *testing.T, name string, fset *token.FileSet, files []*ast.File, ignored []string) []*want {
	t.Helper()
	var wants []*want
	add := func(f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				spec, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				pats, err := parsePatterns(spec)
				if err != nil {
					t.Fatalf("%s: %s: bad want comment: %v", name, pos, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: %s: bad want pattern %q: %v", name, pos, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	for _, f := range files {
		add(f)
	}
	for _, path := range ignored {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		add(f)
	}
	return wants
}

// parsePatterns lexes the sequence of Go-quoted or backquoted strings
// in a want comment.
func parsePatterns(spec string) ([]string, error) {
	var pats []string
	rest := strings.TrimSpace(spec)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("expected quoted pattern at %q", rest)
		}
		p, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		pats = append(pats, p)
		rest = strings.TrimSpace(rest[len(q):])
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return pats, nil
}

// checkDiags matches diagnostics against wants one-to-one.
func checkDiags(t *testing.T, name string, fset *token.FileSet, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: %s: unexpected diagnostic: %s", name, pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matched pattern %q", name, w.file, w.line, w.raw)
		}
	}
}
