package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"eugene/internal/analysis"
)

func TestValidate(t *testing.T) {
	run := func(*analysis.Pass) (any, error) { return nil, nil }
	ok := []*analysis.Analyzer{{Name: "a", Run: run}, {Name: "b", Run: run}}
	if err := analysis.Validate(ok); err != nil {
		t.Fatalf("Validate(ok) = %v", err)
	}
	for i, bad := range [][]*analysis.Analyzer{
		{{Name: "", Run: run}},
		{{Name: "a", Run: nil}},
		{{Name: "a", Run: run}, {Name: "a", Run: run}},
	} {
		if err := analysis.Validate(bad); err == nil {
			t.Errorf("Validate case %d: expected error", i)
		}
	}
}

func TestSuppressor(t *testing.T) {
	src := `package p

func f() {
	//lint:ignore alpha,beta best-effort cleanup
	g()
	h()
	g() //lint:ignore alpha trailing placement
}

func g() {}
func h() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := analysis.NewSuppressor(fset, []*ast.File{f})

	// Collect the three call positions in source order.
	var calls []token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c.Pos())
		}
		return true
	})
	if len(calls) != 3 {
		t.Fatalf("found %d calls, want 3", len(calls))
	}
	cases := []struct {
		name string
		pos  token.Pos
		want bool
	}{
		{"alpha", calls[0], true},  // standalone directive, line above
		{"beta", calls[0], true},   // multi-analyzer directive
		{"gamma", calls[0], false}, // not named by the directive
		{"alpha", calls[1], false}, // two lines below the directive
		{"alpha", calls[2], true},  // trailing-comment placement
	}
	for _, c := range cases {
		if got := sup.Suppressed(fset, c.name, c.pos); got != c.want {
			p := fset.Position(c.pos)
			t.Errorf("Suppressed(%s, %s) = %v, want %v", c.name, p, got, c.want)
		}
	}
}

func TestSuppressorAudit(t *testing.T) {
	src := `package p

func used() {
	//lint:ignore alpha justified: alpha reports on the next line
	g()
}

func stale() {
	//lint:ignore alpha nothing reports here anymore
	g()
}

func typo() {
	//lint:ignore alhpa misspelled analyzer name
	g()
}

func wild() {
	//lint:ignore * suppress everything
	g()
}

func disabled() {
	//lint:ignore beta beta is in the suite but was not run
	g()
}

func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	run := func(*analysis.Pass) (any, error) { return nil, nil }
	alpha := &analysis.Analyzer{Name: "alpha", Run: run}
	beta := &analysis.Analyzer{Name: "beta", Run: run}
	suite := []*analysis.Analyzer{alpha, beta}
	ran := []*analysis.Analyzer{alpha} // beta is disabled this run

	sup := analysis.NewSuppressor(fset, []*ast.File{f})
	// Simulate alpha reporting inside used(): its directive is on the
	// line above the g() call, i.e. line 4, so the diagnostic is line 5.
	var gInUsed token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && gInUsed == token.NoPos {
			gInUsed = c.Pos()
		}
		return true
	})
	if !sup.Suppressed(fset, "alpha", gInUsed) {
		t.Fatal("directive in used() did not suppress")
	}

	var got []string
	sup.Audit(suite, ran, func(d analysis.Diagnostic) {
		got = append(got, d.Message)
	})
	want := []string{
		"stale lint:ignore: alpha no longer report anything here; delete the directive",
		"lint:ignore names unknown analyzer(s) alhpa; it suppresses nothing",
		"lint:ignore * suppresses every analyzer and cannot be audited; name the analyzers being suppressed",
	}
	if len(got) != len(want) {
		t.Fatalf("Audit reported %d findings %q, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Audit[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
