package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"eugene/internal/analysis"
)

func TestValidate(t *testing.T) {
	run := func(*analysis.Pass) (any, error) { return nil, nil }
	ok := []*analysis.Analyzer{{Name: "a", Run: run}, {Name: "b", Run: run}}
	if err := analysis.Validate(ok); err != nil {
		t.Fatalf("Validate(ok) = %v", err)
	}
	for i, bad := range [][]*analysis.Analyzer{
		{{Name: "", Run: run}},
		{{Name: "a", Run: nil}},
		{{Name: "a", Run: run}, {Name: "a", Run: run}},
	} {
		if err := analysis.Validate(bad); err == nil {
			t.Errorf("Validate case %d: expected error", i)
		}
	}
}

func TestSuppressor(t *testing.T) {
	src := `package p

func f() {
	//lint:ignore alpha,beta best-effort cleanup
	g()
	h()
	g() //lint:ignore alpha trailing placement
}

func g() {}
func h() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := analysis.NewSuppressor(fset, []*ast.File{f})

	// Collect the three call positions in source order.
	var calls []token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c.Pos())
		}
		return true
	})
	if len(calls) != 3 {
		t.Fatalf("found %d calls, want 3", len(calls))
	}
	cases := []struct {
		name string
		pos  token.Pos
		want bool
	}{
		{"alpha", calls[0], true},  // standalone directive, line above
		{"beta", calls[0], true},   // multi-analyzer directive
		{"gamma", calls[0], false}, // not named by the directive
		{"alpha", calls[1], false}, // two lines below the directive
		{"alpha", calls[2], true},  // trailing-comment placement
	}
	for _, c := range cases {
		if got := sup.Suppressed(fset, c.name, c.pos); got != c.want {
			p := fset.Position(c.pos)
			t.Errorf("Suppressed(%s, %s) = %v, want %v", c.name, p, got, c.want)
		}
	}
}
