package goroutineleak_test

import (
	"testing"

	"eugene/internal/analysis/analysistest"
	"eugene/internal/analysis/goroutineleak"
)

func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, "testdata", goroutineleak.Analyzer, "a")
}
