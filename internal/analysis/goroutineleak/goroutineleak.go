// Package goroutineleak reports goroutines that can never be told to
// stop and tickers that are never stopped. The cluster and service
// layers launch long-running loops (probers, sync loops, workers);
// each must either terminate on its own or select on a stop signal —
// a ctx.Done() or a stop channel — or the goroutine (and any ticker
// driving it) outlives its owner forever.
//
// Two rules:
//
//  1. A goroutine whose body contains an unconditional `for { ... }`
//     loop must give that loop an exit: a return or break, or a receive
//     from a stop signal (ctx.Done() or any channel other than a
//     ticker/timer's C — ticking forever on a ticker is exactly the
//     leak). Ranging over a ticker's C is reported for the same
//     reason; ranging over an ordinary channel is stoppable by closing
//     it and is fine.
//
//  2. A time.NewTicker/time.NewTimer result that stays local to its
//     function must have a Stop call in that function (normally
//     `defer t.Stop()`). Tickers that escape (returned, stored,
//     passed along) are the new owner's responsibility.
package goroutineleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"eugene/internal/analysis"
)

// Analyzer reports unstoppable goroutine loops and unstopped tickers.
var Analyzer = &analysis.Analyzer{
	Name: "goroutineleak",
	Doc: `report goroutine loops with no stop path and tickers/timers that are never stopped

A goroutine running for{} must be able to exit: via return/break or a
receive from ctx.Done() or a stop channel. A locally-owned
time.NewTicker/NewTimer needs a Stop call in the same function.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	decls := funcDecls(pass)
	checked := map[*ast.BlockStmt]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTickers(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if body := goBody(pass, g, decls); body != nil && !checked[body] {
					checked[body] = true
					checkGoroutineBody(pass, body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// funcDecls maps each of the package's function objects to its
// declaration, so `go l.worker(...)` can be followed to worker's body.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// goBody resolves the body the go statement will run: a function
// literal's own body, or the declaration of a same-package function or
// concrete method.
func goBody(pass *analysis.Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// checkGoroutineBody applies rule 1 to every loop in a goroutine body.
func checkGoroutineBody(pass *analysis.Pass, body *ast.BlockStmt) {
	inspectSkippingFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond != nil {
				return
			}
			if !loopHasExit(pass, n.Body) {
				pass.Reportf(n.Pos(), "goroutine loop has no stop path: add a return/break or select on ctx.Done() or a stop channel")
			}
		case *ast.RangeStmt:
			if name, ok := tickerChan(pass, n.X); ok && !loopHasExit(pass, n.Body) {
				pass.Reportf(n.Pos(), "ranging over %s never terminates, leaking the goroutine; select on a stop channel alongside it", name)
			}
		}
	})
}

// inspectSkippingFuncLits walks n without descending into nested
// function literals, whose loops run on other goroutines' terms.
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x != nil {
			fn(x)
		}
		return true
	})
}

// loopHasExit reports whether the loop body contains a return, a
// break, or a receive from a stop signal (ctx.Done() or a non-ticker
// channel).
func loopHasExit(pass *analysis.Pass, body *ast.BlockStmt) bool {
	exit := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				exit = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if _, isTicker := tickerChan(pass, n.X); !isTicker {
					exit = true
				}
			}
		}
	})
	return exit
}

// tickerChan reports whether e is the C field of a time.Ticker or
// time.Timer, returning a display name like "ticker.C".
func tickerChan(pass *analysis.Pass, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "C" {
		return "", false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "time" {
		return "", false
	}
	if n := named.Obj().Name(); n == "Ticker" || n == "Timer" {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return id.Name + ".C", true
		}
		return "(" + named.Obj().Name() + ").C", true
	}
	return "", false
}

// checkTickers applies rule 2: every locally-owned NewTicker/NewTimer
// needs a Stop in the same function.
func checkTickers(pass *analysis.Pass, body *ast.BlockStmt) {
	type tickerVar struct {
		obj  types.Object
		pos  token.Pos
		ctor string
	}
	var tickers []tickerVar
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		ctor, ok := tickerCtor(pass, call)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			tickers = append(tickers, tickerVar{obj: obj, pos: call.Pos(), ctor: ctor})
		}
		return true
	})
	for _, tv := range tickers {
		stopped, escapes := tickerUsage(pass, body, tv.obj)
		if !stopped && !escapes {
			pass.Reportf(tv.pos, "%s result is never stopped in this function: add defer %s.Stop()", tv.ctor, tv.obj.Name())
		}
	}
}

// tickerCtor matches time.NewTicker / time.NewTimer calls.
func tickerCtor(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return "", false
	}
	if n := fn.Name(); n == "NewTicker" || n == "NewTimer" {
		return "time." + n, true
	}
	return "", false
}

// tickerUsage scans every use of obj: a .Stop() call satisfies rule 2;
// any use other than the defining assignment or a .C/.Stop/.Reset
// selector transfers ownership (escape) and exempts the function.
func tickerUsage(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) (stopped, escapes bool) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		// What encloses this use?
		if len(stack) >= 2 {
			if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.X == id {
				switch sel.Sel.Name {
				case "Stop":
					stopped = true
					return true
				case "C", "Reset":
					return true
				}
				escapes = true
				return true
			}
			if as, ok := stack[len(stack)-2].(*ast.AssignStmt); ok {
				// The defining (or re-defining) assignment itself.
				for _, lhs := range as.Lhs {
					if lhs == id {
						return true
					}
				}
			}
		}
		escapes = true
		return true
	})
	return stopped, escapes
}
