// Package a seeds goroutineleak violations — unstoppable goroutine
// loops, ticker-only loops, ranging over a ticker channel, unstopped
// tickers — beside the stoppable shapes: select on ctx.Done or a stop
// channel, range over an ordinary channel, deferred ticker Stop, and
// tickers whose ownership escapes.
package a

import (
	"context"
	"time"
)

type R struct {
	stop chan struct{}
}

func doWork() {}

func (r *R) leakyLoop() {
	go func() {
		for { // want `goroutine loop has no stop path`
			time.Sleep(time.Millisecond)
		}
	}()
}

func (r *R) stoppableLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-r.stop:
				return
			}
		}
	}()
}

func (r *R) tickerOnlyLoop() {
	go func() {
		ticker := time.NewTicker(time.Second) // want `time\.NewTicker result is never stopped in this function`
		for { // want `goroutine loop has no stop path`
			select {
			case <-ticker.C:
				doWork()
			}
		}
	}()
}

func (r *R) namedLoop() {
	go r.run()
}

func (r *R) run() {
	for { // want `goroutine loop has no stop path`
		doWork()
	}
}

func (r *R) rangeTicker() {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for range t.C { // want `ranging over t\.C never terminates`
			doWork()
		}
	}()
}

func (r *R) rangeChan(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

func (r *R) stoppedTickerLoop(done chan struct{}) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				doWork()
			case <-done:
				return
			}
		}
	}()
}

func escapingTimer() *time.Timer {
	t := time.NewTimer(time.Second)
	return t
}
