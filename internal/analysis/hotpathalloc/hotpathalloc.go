// Package hotpathalloc enforces the //eugene:noalloc annotation: a
// function whose doc comment carries the marker promises a
// steady-state allocation-free body, and this analyzer flags the
// constructs that obviously break that promise — unguarded make/new,
// slice and map literals, &struct{} pointer literals, appends to nil
// slices, variable-capturing closures, fmt calls, and explicit
// conversions to interface types.
//
// The arena idioms the scheduler's hot paths are built on stay legal:
// a construct inside an if whose condition tests len/cap or compares
// against nil is an amortized growth or pool-miss path, not a per-call
// allocation (`if t == nil { t = &task{} }`, `if cap(buf) < n { buf =
// make(...) }`), appends into resliced scratch (`append(ws.group[:0],
// ...)`) reuse existing capacity, plain (non-pointer) struct literals
// stay on the stack, and fmt inside panic is a failure path.
//
// The static check is backed by testing.AllocsPerRun tier-1 tests on
// the same functions (see internal/sched and internal/staged alloc
// tests); this analyzer catches the regression at vet time, the tests
// catch what escape analysis decides at run time.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"eugene/internal/analysis"
)

// Analyzer reports allocating constructs in //eugene:noalloc
// functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: `report allocating constructs in functions annotated //eugene:noalloc

Flags make/new, slice/map composite literals, &struct literals, appends
to nil slices, capturing closures, fmt calls, and explicit interface
conversions — except under len/cap/nil guards (amortized growth and
pool-miss paths) and fmt inside panic (failure path).`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isNoalloc(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// isNoalloc reports whether the function's doc comment carries the
// //eugene:noalloc marker.
func isNoalloc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == "eugene:noalloc" || strings.HasPrefix(text, "eugene:noalloc ") {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	nilDeclared := nilDeclaredVars(pass, fd)
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fd, n, name, nilDeclared, stack)
		case *ast.CompositeLit:
			checkCompositeLit(pass, n, name, stack)
		case *ast.FuncLit:
			if captures(pass, fd, n) {
				pass.Reportf(n.Pos(), "%s is //eugene:noalloc but this closure captures variables and allocates", name)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, name string, nilDeclared map[types.Object]bool, stack []ast.Node) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin)
		if !ok {
			// A conversion spelled with a bare identifier (e.g. any(x)).
			checkConversion(pass, call, name, stack)
			return
		}
		switch b.Name() {
		case "make":
			if !guarded(stack) {
				pass.Reportf(call.Pos(), "%s is //eugene:noalloc but calls make outside a len/cap/nil guard", name)
			}
		case "new":
			if !guarded(stack) {
				pass.Reportf(call.Pos(), "%s is //eugene:noalloc but calls new outside a len/cap/nil guard", name)
			}
		case "append":
			if len(call.Args) == 0 {
				return
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && nilDeclared[obj] && !guarded(stack) {
					pass.Reportf(call.Pos(), "%s is //eugene:noalloc but appends to the nil-declared slice %s (every element allocates); reslice reused scratch instead", name, id.Name)
				}
			}
		}
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok {
			checkConversion(pass, call, name, stack)
			return
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && !inPanic(stack) {
			pass.Reportf(call.Pos(), "%s is //eugene:noalloc but calls fmt.%s (formats and allocates); fmt is only allowed inside panic", name, fn.Name())
		}
	default:
		checkConversion(pass, call, name, stack)
	}
}

// checkConversion reports explicit conversions to interface types,
// which box their operand.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, name string, stack []ast.Node) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	if !types.IsInterface(tv.Type) {
		return
	}
	argT := pass.TypesInfo.TypeOf(call.Args[0])
	if argT == nil || types.IsInterface(argT) || guarded(stack) || inPanic(stack) {
		return
	}
	pass.Reportf(call.Pos(), "%s is //eugene:noalloc but converts to an interface type (boxes the value)", name)
}

func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit, name string, stack []ast.Node) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		if !guarded(stack) && !inPanic(stack) {
			pass.Reportf(lit.Pos(), "%s is //eugene:noalloc but builds a slice or map literal", name)
		}
	case *types.Struct:
		// A plain struct literal lives on the stack; only taking its
		// address makes it escape-prone.
		if addressed(lit, stack) && !guarded(stack) && !inPanic(stack) {
			pass.Reportf(lit.Pos(), "%s is //eugene:noalloc but allocates with &%s{...}", name, types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
}

// addressed reports whether lit's direct parent is the & operator.
func addressed(lit *ast.CompositeLit, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	u, ok := stack[len(stack)-2].(*ast.UnaryExpr)
	return ok && u.Op == token.AND && ast.Unparen(u.X) == lit
}

// guarded reports whether any enclosing if condition tests len or cap
// or compares against nil — the amortized-growth / pool-miss shapes.
func guarded(stack []ast.Node) bool {
	for _, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		if condIsCapacityGuard(ifStmt.Cond) {
			return true
		}
	}
	return false
}

func condIsCapacityGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				found = true
			}
		case *ast.Ident:
			if n.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}

// inPanic reports whether the innermost enclosing call on the stack is
// panic — allocations on the failure path are not serving-path
// allocations.
func inPanic(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	}
	return false
}

// nilDeclaredVars collects local slice variables declared without an
// initializer (`var x []T`): appending to one grows from zero and
// allocates on every call. A variable later reassigned to anything but
// its own append (`dst = ws.dst[:0]`) no longer starts nil and is
// dropped — that is the reslice-scratch idiom, not growth from zero.
func nilDeclaredVars(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 {
				continue
			}
			for _, id := range vs.Names {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || !out[obj] {
				continue
			}
			if i < len(as.Rhs) && isAppendOf(pass, as.Rhs[i], obj) {
				continue
			}
			delete(out, obj)
		}
		return true
	})
	return out
}

// isAppendOf reports whether expr is append(x, ...) for the variable x.
func isAppendOf(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[arg] == obj
}

// captures reports whether lit references variables declared in the
// enclosing function (outside the literal itself).
func captures(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.Pos() == token.NoPos {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// this literal.
		if obj.Pos() >= fd.Pos() && obj.Pos() <= fd.End() && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
			found = true
		}
		return !found
	})
	return found
}
