// Package a seeds hotpathalloc violations in //eugene:noalloc
// functions — unguarded make/new, slice literals, nil-slice appends,
// fmt calls, capturing closures, interface boxing — beside the legal
// arena idioms: len/cap and nil guards, resliced scratch, plain struct
// literals, fmt inside panic, and a justified //lint:ignore.
package a

import "fmt"

type pool struct {
	bufs [][]float64
	maxW int
}

//eugene:noalloc
func (p *pool) get() []float64 {
	if n := len(p.bufs); n > 0 {
		b := p.bufs[n-1]
		p.bufs = p.bufs[:n-1]
		return b[:0]
	}
	return make([]float64, 0, p.maxW) // want `calls make outside a len/cap/nil guard`
}

//eugene:noalloc
func getGuarded(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

//eugene:noalloc
func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

//eugene:noalloc
func reuseScratch(p *pool, xs []float64) {
	rows := p.bufs[:0]
	for range xs {
		rows = append(rows, nil)
	}
	p.bufs = rows
}

//eugene:noalloc
func reassignedScratch(p *pool, xs []float64) {
	var rows [][]float64
	rows = p.bufs[:0]
	for range xs {
		rows = append(rows, nil)
	}
	p.bufs = rows
}

//eugene:noalloc
func bad(n int) []int {
	out := []int{1, 2} // want `builds a slice or map literal`
	var acc []int
	acc = append(acc, n)     // want `appends to the nil-declared slice acc`
	_ = fmt.Sprintf("%d", n) // want `calls fmt\.Sprintf`
	q := new(int)            // want `calls new outside a len/cap/nil guard`
	_ = q
	f := func() int { return n } // want `closure captures variables`
	_ = f
	_ = any(n) // want `converts to an interface type`
	return out
}

type task struct {
	id   int
	conf float64
}

//eugene:noalloc
func nilGuard(t *task) *task {
	if t == nil {
		t = &task{}
	}
	return t
}

//eugene:noalloc
func plainStructOK(id int) task {
	return task{id: id}
}

//eugene:noalloc
func escapingStruct(id int) *task {
	return &task{id: id} // want `allocates with &task\{\.\.\.\}`
}

//eugene:noalloc
func failurePath(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
}

// free is unannotated: it may allocate.
func free() []int { return make([]int, 8) }

//eugene:noalloc
func suppressed(w int) []float64 {
	//lint:ignore hotpathalloc pool-miss fallback is the documented slow path
	return make([]float64, 0, w)
}
