package hotpathalloc_test

import (
	"testing"

	"eugene/internal/analysis/analysistest"
	"eugene/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "a")
}
