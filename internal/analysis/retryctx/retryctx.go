// Package retryctx flags retry loops that back off without consulting
// their context. A loop that sleeps between failed attempts but never
// calls ctx.Err() or selects on ctx.Done() keeps burning backoff time
// after the caller has given up — the request is unobservable-dead but
// the goroutine is not. The service client's retry loop checks ctx.Err()
// before every attempt and waits inside a select; this analyzer keeps
// that shape mandatory for any future retry loop.
package retryctx

import (
	"go/ast"
	"go/types"

	"eugene/internal/analysis"
)

// Analyzer reports backoff loops that ignore their context.
var Analyzer = &analysis.Analyzer{
	Name: "retryctx",
	Doc: `report retry loops that sleep between attempts without consulting ctx

A for loop that both makes an error-returning call (the attempt) and
blocks in time.Sleep or <-time.After (the backoff) must consult the
context that is in scope: call ctx.Err(), receive from ctx.Done(), or
wait inside a select that includes ctx.Done(). Otherwise cancellation
cannot interrupt the backoff and the loop retries on behalf of a caller
that already went away.

Loops with no context in scope are not flagged (they have nothing to
consult), and calls inside nested function literals belong to the
nested function, not the loop.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				checkLoop(pass, f, n.Body, n)
			case *ast.RangeStmt:
				checkLoop(pass, f, n.Body, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkLoop applies the retry-loop rule to one for/range body.
func checkLoop(pass *analysis.Pass, file *ast.File, body *ast.BlockStmt, loop ast.Node) {
	var sleepPos ast.Node
	var hasAttempt, hasCtxCheck, usesCtx bool
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isSleep(pass, n):
				if sleepPos == nil {
					sleepPos = n
				}
			case isCtxConsult(pass, n):
				hasCtxCheck = true
			case returnsError(pass, n):
				hasAttempt = true
			}
			if receivesCtx(pass, n) {
				usesCtx = true
			}
		case *ast.UnaryExpr:
			// <-time.After(d) is a sleep; <-ctx.Done() is a consult
			// (covered by the CallExpr case on ctx.Done()).
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isTimeAfter(pass, call) {
				if sleepPos == nil {
					sleepPos = n
				}
			}
		case *ast.Ident:
			if isCtxType(pass.TypesInfo.TypeOf(n)) {
				usesCtx = true
			}
		}
	})
	if sleepPos == nil || !hasAttempt || hasCtxCheck {
		return
	}
	// Only loops that can consult a context are held to the rule: the
	// loop touches a context value itself, or the innermost enclosing
	// function has one as a parameter.
	if !usesCtx && !enclosingHasCtxParam(pass, file, loop) {
		return
	}
	pass.Reportf(sleepPos.Pos(), "retry loop backs off without consulting ctx: check ctx.Err() or select on ctx.Done() before sleeping")
}

// inspectShallow walks n but does not descend into nested function
// literals or nested loops: their calls belong to the nested function
// or loop, not this one. Pairing an outer loop's attempt with an inner
// loop's sleep would flag shapes that are not retry loops at all; the
// inner loop is judged on its own body.
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(n ast.Node) bool {
		if first {
			first = false // the root (this loop's own body) is not "nested"
			if n != nil {
				fn(n)
			}
			return true
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// isSleep reports calls to time.Sleep.
func isSleep(pass *analysis.Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass, call, "time", "Sleep")
}

// isTimeAfter reports calls to time.After or time.Tick.
func isTimeAfter(pass *analysis.Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass, call, "time", "After") || isPkgFunc(pass, call, "time", "Tick")
}

// isCtxConsult reports Err or Done called on a context.Context value.
// Merely forwarding ctx to the attempt does not count: the attempt may
// fail fast on cancellation, but the backoff sleep still blocks through
// it.
func isCtxConsult(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
		return false
	}
	return isCtxType(pass.TypesInfo.TypeOf(sel.X))
}

// receivesCtx reports whether any argument of the call is a
// context.Context.
func receivesCtx(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isCtxType(pass.TypesInfo.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// isPkgFunc reports whether call is pkg.name.
func isPkgFunc(pass *analysis.Pass, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkg && fn.Name() == name
}

// returnsError reports whether the call's only or last result is an
// error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	last := tv.Type
	if tup, ok := tv.Type.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		last = tup.At(tup.Len() - 1).Type()
	}
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// enclosingHasCtxParam reports whether the innermost function
// enclosing loop declares a context.Context parameter.
func enclosingHasCtxParam(pass *analysis.Pass, file *ast.File, loop ast.Node) bool {
	var innermost *ast.FuncType
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if n.Pos() > loop.Pos() || n.End() < loop.End() {
			return false // cannot contain the loop; prune
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			innermost = n.Type
		case *ast.FuncLit:
			innermost = n.Type
		}
		return true
	})
	if innermost == nil || innermost.Params == nil {
		return false
	}
	for _, field := range innermost.Params.List {
		if isCtxType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}
