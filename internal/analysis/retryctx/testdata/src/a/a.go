package a

import (
	"context"
	"errors"
	"time"
)

func attempt(ctx context.Context) error { return errors.New("transient") }

// badSleep is the shape the analyzer exists for: the attempt forwards
// ctx, but the backoff sleeps straight through cancellation.
func badSleep(ctx context.Context) error {
	var err error
	for i := 0; i < 5; i++ {
		if err = attempt(ctx); err == nil {
			return nil
		}
		time.Sleep(time.Duration(i) * 10 * time.Millisecond) // want `retry loop backs off without consulting ctx`
	}
	return err
}

// badAfter backs off via <-time.After, equally blind to ctx.
func badAfter(ctx context.Context) error {
	for {
		if err := attempt(ctx); err == nil {
			return nil
		}
		<-time.After(50 * time.Millisecond) // want `retry loop backs off without consulting ctx`
	}
}

// goodErrCheck consults ctx.Err() each iteration before backing off.
func goodErrCheck(ctx context.Context) error {
	var err error
	for i := 0; i < 5; i++ {
		if err = attempt(ctx); err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		time.Sleep(10 * time.Millisecond)
	}
	return err
}

// goodSelect waits inside a select that includes ctx.Done().
func goodSelect(ctx context.Context) error {
	for {
		if err := attempt(ctx); err == nil {
			return nil
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// noCtx has no context in scope; there is nothing to consult, so the
// loop is not held to the rule.
func noCtx(do func() error) error {
	var err error
	for i := 0; i < 3; i++ {
		if err = do(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

// pacing sleeps to shape an arrival schedule; the error-returning calls
// happen inside launched goroutines, which belong to their own
// functions, not the loop — an open-loop load generator, not a retry.
func pacing(ctx context.Context, n int) {
	next := time.Now()
	for i := 0; i < n; i++ {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(time.Millisecond)
		go func() {
			_ = attempt(ctx)
		}()
	}
}

// pollNoAttempt waits for a condition without making attempts; not a
// retry loop even though ctx is in scope.
func pollNoAttempt(ctx context.Context, ready func() bool) {
	for !ready() {
		time.Sleep(time.Millisecond)
	}
}
