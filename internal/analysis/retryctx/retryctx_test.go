package retryctx_test

import (
	"testing"

	"eugene/internal/analysis/analysistest"
	"eugene/internal/analysis/retryctx"
)

func TestRetryCtx(t *testing.T) {
	analysistest.Run(t, "testdata", retryctx.Analyzer, "a")
}
