// Package blockinlock reports blocking operations performed while a
// sync.Mutex or sync.RWMutex is held. A blocked lock holder stalls
// every other goroutine that needs the lock — on the scheduler
// dispatch and cluster proxy paths that turns one slow syscall or
// channel peer into a fleet-wide convoy.
//
// Blocking operations: time.Sleep, sync.WaitGroup.Wait, http.Client
// requests, net dials and connection I/O, os.File I/O, channel sends
// and receives outside a select with a default clause, selects without
// a default clause, and the repo's own goroutine-joining teardowns
// (sched.Live.Stop, cluster.Router.Close), which wait on worker
// goroutines that may themselves need the held lock.
//
// The analysis is intraprocedural (plus the named teardowns): it flags
// blocking constructs lexically under a Lock in the same function.
// sync.Cond.Wait is exempt — it requires the lock by contract — and so
// is any channel operation reachable only through a select that has a
// default clause (the scheduler's wakeAll uses exactly that shape for
// its non-blocking wake tokens).
package blockinlock

import (
	"go/ast"
	"go/token"
	"go/types"

	"eugene/internal/analysis"
	"eugene/internal/analysis/lockflow"
)

// Analyzer reports blocking calls and channel operations under a held
// mutex.
var Analyzer = &analysis.Analyzer{
	Name: "blockinlock",
	Doc: `report blocking operations (I/O, sleeps, channel waits, goroutine joins) while a mutex is held

A goroutine that blocks while holding a lock convoys every goroutine
that needs that lock. Channel operations are exempt inside a select
with a default clause; sync.Cond.Wait is exempt by contract.`,
	Run: run,
}

// blockingCall names one known-blocking function: package path,
// receiver type name ("" for package-level functions), and name.
type blockingCall struct {
	pkg, recv, name string
}

var blockingCalls = []blockingCall{
	{"time", "", "Sleep"},
	{"sync", "WaitGroup", "Wait"},
	{"net/http", "Client", "Do"},
	{"net/http", "Client", "Get"},
	{"net/http", "Client", "Post"},
	{"net/http", "Client", "PostForm"},
	{"net/http", "Client", "Head"},
	{"net/http", "", "Get"},
	{"net/http", "", "Post"},
	{"net/http", "", "PostForm"},
	{"net/http", "", "Head"},
	{"net", "", "Dial"},
	{"net", "", "DialTimeout"},
	{"net", "Conn", "Read"},
	{"net", "Conn", "Write"},
	{"os", "File", "Read"},
	{"os", "File", "ReadAt"},
	{"os", "File", "Write"},
	{"os", "File", "WriteAt"},
	{"os", "File", "Sync"},
	{"os", "", "Open"},
	{"os", "", "Create"},
	{"os", "", "ReadFile"},
	{"os", "", "WriteFile"},
	{"io", "", "ReadAll"},
	{"io", "", "Copy"},
	// Repo-specific teardowns that join goroutine pools (wg.Wait
	// inside): waiting for workers while holding a lock the workers'
	// completion path needs is a deadlock, not just a convoy.
	{"eugene/internal/sched", "Live", "Stop"},
	{"eugene/internal/cluster", "Router", "Close"},
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lockflow.Walk(pass, fd.Body, lockflow.Events{
				Node: func(n ast.Node, held []lockflow.Lock) {
					if len(held) == 0 {
						return
					}
					holding := held[len(held)-1].Name
					switch n := n.(type) {
					case *ast.SelectStmt:
						if !hasDefault(n) {
							pass.Reportf(n.Pos(), "select without a default clause blocks while holding %s", holding)
						}
					case *ast.SendStmt:
						pass.Reportf(n.Pos(), "channel send may block while holding %s; use a select with default or move it outside the lock", holding)
					case *ast.UnaryExpr:
						if n.Op == token.ARROW {
							pass.Reportf(n.Pos(), "channel receive may block while holding %s; use a select with default or move it outside the lock", holding)
						}
					case *ast.CallExpr:
						if name, ok := isBlockingCall(pass, n); ok {
							pass.Reportf(n.Pos(), "call to %s blocks while holding %s", name, holding)
						}
					}
				},
			})
		}
	}
	return nil, nil
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isBlockingCall matches call against the blocking table; it returns
// the display name of the matched function.
func isBlockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	recv := recvTypeName(fn)
	for _, b := range blockingCalls {
		if fn.Pkg().Path() == b.pkg && fn.Name() == b.name && recv == b.recv {
			if b.recv == "" {
				return b.pkg + "." + b.name, true
			}
			return b.recv + "." + b.name, true
		}
	}
	return "", false
}

// recvTypeName returns the name of fn's receiver type with pointers
// stripped, or "" for a package-level function.
func recvTypeName(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
