package blockinlock_test

import (
	"testing"

	"eugene/internal/analysis/analysistest"
	"eugene/internal/analysis/blockinlock"
)

func TestBlockInLock(t *testing.T) {
	analysistest.Run(t, "testdata", blockinlock.Analyzer, "a")
}
