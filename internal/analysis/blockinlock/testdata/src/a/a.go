// Package a seeds blockinlock violations — sleeps, waits, I/O, and
// channel operations under a held mutex — next to the legal shapes:
// blocking after release, on a released branch, or behind a select
// with a default clause.
package a

import (
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

type G struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
	wg   sync.WaitGroup
}

func (g *G) sleepLocked() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep blocks while holding G\.mu`
	g.mu.Unlock()
}

func (g *G) sleepUnlocked() {
	g.mu.Lock()
	g.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func (g *G) waitUnderDeferredUnlock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.wg.Wait() // want `call to WaitGroup\.Wait blocks while holding G\.mu`
}

func (g *G) releasedBranch(c bool) {
	g.mu.Lock()
	if c {
		g.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	g.mu.Unlock()
}

func (g *G) chanOps() {
	g.mu.Lock()
	g.ch <- 1 // want `channel send may block while holding G\.mu`
	<-g.ch    // want `channel receive may block while holding G\.mu`
	select { // want `select without a default clause blocks while holding G\.mu`
	case v := <-g.ch:
		_ = v
	}
	select {
	case g.ch <- 2:
	default:
	}
	g.mu.Unlock()
}

func (g *G) httpLocked(cl *http.Client, req *http.Request) {
	g.mu.Lock()
	defer g.mu.Unlock()
	resp, err := cl.Do(req) // want `call to Client\.Do blocks while holding G\.mu`
	if err == nil {
		resp.Body.Close()
	}
}

func (g *G) fileLocked(f *os.File, buf []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, _ = f.Read(buf)    // want `call to File\.Read blocks while holding G\.mu`
	_, _ = io.ReadAll(f)  // want `call to io\.ReadAll blocks while holding G\.mu`
}

// condWait is the contract exemption: sync.Cond.Wait must hold the
// lock.
func (g *G) condWait() {
	g.mu.Lock()
	for g.ready() {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

func (g *G) ready() bool { return true }

// nonBlockingWake is the scheduler's wakeAll shape: sends under the
// lock, but every send sits behind a default clause.
func (g *G) nonBlockingWake() {
	g.mu.Lock()
	select {
	case g.ch <- 1:
	default:
	}
	g.mu.Unlock()
}
