// Package asmparity enforces the kernel fallback contract: every
// assembly-backed function declared in an amd64-and-not-noasm file
// must have a scalar Go implementation with the identical signature
// that builds both under -tags noasm and on non-amd64 architectures.
// Without it, `go test -tags noasm` (the correctness oracle for the
// SIMD kernels) and the arm64 cross-build silently lose coverage or
// fail to link.
package asmparity

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"eugene/internal/analysis"
)

// Analyzer checks scalar-fallback parity for asm-backed functions.
var Analyzer = &analysis.Analyzer{
	Name: "asmparity",
	Doc: `require a same-signature scalar fallback for every asm-backed function

A bodyless function declared in a file gated on amd64 && !noasm must
have a function of the same name and signature, with a body, in files
that build under -tags noasm on amd64 AND on non-amd64 platforms.
Helpers referenced only from inside the asm-gated files themselves
(such as cpuid feature probes) are exempt: they never link into a
fallback build.`,
	Run: run,
}

// fileClass records where one file's build constraints place it in the
// three build contexts we care about.
type fileClass struct {
	syntax   *ast.File
	asmSel   bool // builds with amd64 && !noasm
	noasmSel bool // builds with amd64 && noasm
	otherSel bool // builds with !amd64 (no noasm tag)
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(pass.Dir)
	if err != nil {
		return nil, err
	}
	// Reuse already-parsed syntax for the files in this pass so
	// diagnostics in them carry the right positions; parse the rest
	// (build-tag-excluded files) into the same fset.
	parsed := map[string]*ast.File{}
	for _, f := range pass.Files {
		parsed[filepath.Base(pass.Fset.Position(f.Package).Filename)] = f
	}
	var files []*fileClass
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		syntax := parsed[name]
		if syntax == nil {
			syntax, err = parser.ParseFile(pass.Fset, filepath.Join(pass.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				continue // unparseable files are not this analyzer's problem
			}
		}
		fc := classify(name, syntax)
		fc.syntax = syntax
		files = append(files, fc)
	}

	type decl struct {
		name string
		sig  string
		pos  token.Pos
	}
	var asmDecls []decl
	// withBody[name] = (signature, covers noasm, covers other)
	type impl struct {
		sig          string
		noasm, other bool
		anySig       map[string]bool
	}
	impls := map[string]*impl{}
	// refs counts identifier references per build context so we can
	// exempt helpers used only inside asm-gated files.
	referencedOutsideAsm := map[string]bool{}

	for _, fc := range files {
		for _, d := range fc.syntax.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if fd.Body == nil {
				if fc.asmSel && !fc.noasmSel && !fc.otherSel {
					asmDecls = append(asmDecls, decl{fd.Name.Name, sigString(pass.Fset, fd.Type), fd.Name.Pos()})
				}
				continue
			}
			im := impls[fd.Name.Name]
			if im == nil {
				im = &impl{anySig: map[string]bool{}}
				impls[fd.Name.Name] = im
			}
			s := sigString(pass.Fset, fd.Type)
			im.anySig[s] = true
			if fc.noasmSel {
				im.noasm = true
				im.sig = s
			}
			if fc.otherSel {
				im.other = true
				im.sig = s
			}
		}
		if !(fc.asmSel && !fc.noasmSel && !fc.otherSel) {
			ast.Inspect(fc.syntax, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					referencedOutsideAsm[id.Name] = true
				}
				return true
			})
		}
	}

	sort.Slice(asmDecls, func(i, j int) bool { return asmDecls[i].name < asmDecls[j].name })
	for _, d := range asmDecls {
		if !referencedOutsideAsm[d.name] {
			continue // asm-internal helper (cpuid, xgetbv): never links into fallback builds
		}
		im := impls[d.name]
		switch {
		case im == nil:
			pass.Reportf(d.pos, "asm-backed %s has no scalar fallback: add a same-signature Go implementation in a !amd64 || noasm file", d.name)
		case !im.noasm || !im.other:
			pass.Reportf(d.pos, "asm-backed %s has a fallback that does not cover both noasm and non-amd64 builds (constrain the fallback file with !amd64 || noasm)", d.name)
		case !im.anySig[d.sig]:
			pass.Reportf(d.pos, "asm-backed %s and its scalar fallback disagree on signature: asm declares %s, fallback has %s", d.name, d.sig, im.sig)
		}
	}
	return nil, nil
}

// classify evaluates a file's build constraints (//go:build line plus
// GOARCH filename suffix) under the three contexts.
func classify(name string, f *ast.File) *fileClass {
	fc := &fileClass{}
	expr := constraintExpr(f)
	eval := func(amd64, noasm bool) bool {
		tag := func(t string) bool {
			switch t {
			case "amd64":
				return amd64
			case "arm64":
				return !amd64
			case "noasm":
				return noasm
			case "linux", "unix":
				return true
			case "gc":
				return true
			default:
				if strings.HasPrefix(t, "go1.") {
					return true
				}
				return false
			}
		}
		if !suffixOK(name, amd64) {
			return false
		}
		if expr == nil {
			return true
		}
		return expr.Eval(tag)
	}
	fc.asmSel = eval(true, false)
	fc.noasmSel = eval(true, true)
	fc.otherSel = eval(false, false)
	return fc
}

// suffixOK applies the _GOARCH filename convention.
func suffixOK(name string, amd64 bool) bool {
	base := strings.TrimSuffix(name, ".go")
	for _, arch := range []string{"amd64", "arm64", "386", "arm", "riscv64", "ppc64le", "s390x", "wasm"} {
		if strings.HasSuffix(base, "_"+arch) {
			return (arch == "amd64") == amd64
		}
	}
	return true
}

// constraintExpr extracts the //go:build expression from a file, if
// any.
func constraintExpr(f *ast.File) constraint.Expr {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				if expr, err := constraint.Parse(c.Text); err == nil {
					return expr
				}
			}
		}
		// Comments after the package clause cannot be build constraints.
		if cg.Pos() > f.Package {
			break
		}
	}
	return nil
}

// sigString renders a function type without parameter names, so that
// `func dot4(a, b []float64) float64` and
// `func dot4(x, y []float64) float64` compare equal.
func sigString(fset *token.FileSet, ft *ast.FuncType) string {
	var parts []string
	render := func(fl *ast.FieldList) string {
		if fl == nil {
			return ""
		}
		var ts []string
		for _, f := range fl.List {
			var buf strings.Builder
			_ = printer.Fprint(&buf, fset, f.Type)
			n := len(f.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				ts = append(ts, buf.String())
			}
		}
		return strings.Join(ts, ", ")
	}
	parts = append(parts, "("+render(ft.Params)+")")
	if ft.Results != nil {
		parts = append(parts, "("+render(ft.Results)+")")
	}
	return fmt.Sprintf("func%s", strings.Join(parts, " "))
}
