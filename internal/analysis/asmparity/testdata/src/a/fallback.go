//go:build !amd64 || noasm

package a

func dotVec(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// mismatch's fallback grew an extra parameter the asm declaration does
// not have.
func mismatch(a []float64, extra int) float64 {
	return float64(extra)
}
