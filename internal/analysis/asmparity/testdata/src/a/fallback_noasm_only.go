//go:build noasm

package a

// partialOnly's fallback builds under -tags noasm but not on non-amd64
// platforms: the arm64 build would fail to link.
func partialOnly(a []float64) float64 {
	return a[0]
}
