package a

// Tag-neutral references: these functions must link in every build
// context, so each asm declaration needs a scalar fallback.
var (
	_ = dotVec
	_ = mismatch
	_ = partialOnly
	_ = missing
)
