//go:build amd64 && !noasm

package a

// dotVec has a full fallback (both noasm and non-amd64): fine.
func dotVec(a, b []float64) float64

func mismatch(a []float64) float64 // want `asm-backed mismatch and its scalar fallback disagree on signature`

func partialOnly(a []float64) float64 // want `asm-backed partialOnly has a fallback that does not cover both noasm and non-amd64 builds`

func missing(n int) int // want `asm-backed missing has no scalar fallback`

// probeOnly is referenced only inside this asm-gated file (a cpuid-style
// feature probe): it never links into a fallback build, so no fallback
// is required.
func probeOnly() bool

func useProbe() bool { return probeOnly() }
