package asmparity_test

import (
	"testing"

	"eugene/internal/analysis/analysistest"
	"eugene/internal/analysis/asmparity"
)

func TestAsmParity(t *testing.T) {
	analysistest.Run(t, "testdata", asmparity.Analyzer, "a")
}
