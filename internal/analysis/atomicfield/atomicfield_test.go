package atomicfield_test

import (
	"testing"

	"eugene/internal/analysis/analysistest"
	"eugene/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "a")
}
