// Package atomicfield enforces the scheduler's atomic-access
// discipline: once any code passes a struct field (or package-level
// variable) to a sync/atomic operation, every other access to that
// location must also go through sync/atomic. The deadline daemon's
// dead flags, the shard counts, and the serving counters in
// internal/sched rely on exactly this invariant — one forgotten raw
// load turns "expiry never contends with dispatch" into a data race
// the race detector only catches when the interleaving happens to
// occur in a test run.
package atomicfield

import (
	"go/ast"
	"go/types"

	"eugene/internal/analysis"
)

// Analyzer flags mixed atomic/non-atomic access to the same location.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: `report non-atomic access to fields used with sync/atomic

A struct field or package-level variable whose address is passed to a
sync/atomic function anywhere in the package must be read and written
through sync/atomic everywhere: mixing atomic and plain access is a
data race. Fields of type atomic.Int64, atomic.Bool, etc. are immune
by construction and not checked.`,
	Run: run,
}

// atomicAddrFuncs are the sync/atomic functions whose first argument
// is the address of the guarded location.
var atomicAddrFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: collect the locations accessed atomically and the
	// positions of those sanctioned accesses.
	atomicObjs := map[types.Object]bool{}
	sanctioned := map[ast.Node]bool{} // the &x.f operand of an atomic call
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isAtomicCall(pass, call) {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			if obj := addressedObject(pass, un.X); obj != nil {
				atomicObjs[obj] = true
				sanctioned[ast.Unparen(un.X)] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil, nil
	}
	// Pass 2: every other access to those locations is a violation.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[e] {
					return false
				}
				if obj := selectedField(pass, e); obj != nil && atomicObjs[obj] {
					pass.Reportf(e.Sel.Pos(), "non-atomic access to %s, which is accessed with sync/atomic elsewhere", obj.Name())
					return false
				}
			case *ast.Ident:
				if sanctioned[e] {
					return false
				}
				if obj := pass.TypesInfo.Uses[e]; obj != nil && atomicObjs[obj] && isPackageVar(obj) {
					pass.Reportf(e.Pos(), "non-atomic access to %s, which is accessed with sync/atomic elsewhere", obj.Name())
					return false
				}
			}
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether call invokes a sync/atomic
// address-taking function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !atomicAddrFuncs[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addressedObject resolves &expr's guarded location: a struct field or
// a package-level variable.
func addressedObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		return selectedField(pass, e)
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil && isPackageVar(obj) {
			return obj
		}
	}
	return nil
}

// selectedField returns the struct-field object a selector denotes, or
// nil for method values, qualified identifiers, and package vars
// reached through imports.
func selectedField(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// isPackageVar reports whether obj is a package-level variable.
func isPackageVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Parent() == v.Pkg().Scope()
}
