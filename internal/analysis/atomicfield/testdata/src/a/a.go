package a

import "sync/atomic"

type counter struct {
	n    int64 // accessed with sync/atomic in inc: every access must be atomic
	safe atomic.Int64
	mu   int64 // never touched atomically: plain access is fine
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // want `non-atomic access to n`
}

func (c *counter) write() {
	c.n = 0 // want `non-atomic access to n`
	c.safe.Store(0)
	c.mu = 1
}

func (c *counter) loadOK() int64 {
	return atomic.LoadInt64(&c.n)
}

var hits int64

func bump() {
	atomic.AddInt64(&hits, 1)
}

func peek() int64 {
	return hits // want `non-atomic access to hits`
}
