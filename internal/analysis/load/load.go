// Package load type-checks Go packages for the analysis driver using
// only the standard library and the go command: `go list -export`
// compiles dependencies into the build cache and reports their export
// data files, which go/importer's gc importer reads back, and the
// target packages themselves are parsed and type-checked from source
// so analyzers see syntax trees with full type information. This is
// the offline, zero-dependency subset of golang.org/x/tools/go/packages
// that eugenevet's standalone mode and the analysistest fixtures need.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	IgnoredFiles []string // build-tag-excluded .go files in Dir
	Syntax       []*ast.File
	Types        *types.Package
	TypesInfo    *types.Info
}

// listedPackage mirrors the `go list -json` fields the loader uses.
type listedPackage struct {
	ImportPath     string
	Dir            string
	Export         string
	Standard       bool
	DepOnly        bool
	GoFiles        []string
	CgoFiles       []string
	IgnoredGoFiles []string
	Error          *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir for the given
// patterns and returns the decoded package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,CgoFiles,IgnoredGoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that resolves imports from
// the export-data files go list reported. Import paths are used as
// written in source: the module has no vendored imports, so no
// ImportMap indirection is needed.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Packages loads, parses, and type-checks the packages matching
// patterns (resolved relative to dir, e.g. "./..."). Dependencies come
// from compiled export data; the matched packages themselves are
// checked from source. Packages that fail to list, parse, or
// type-check produce an error — analyzers require well-typed input.
func Packages(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, nil, fmt.Errorf("load: %s uses cgo (unsupported)", p.ImportPath)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, p)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, pkg)
	}
	return fset, out, nil
}

// check parses and type-checks one listed package from source.
func check(fset *token.FileSet, imp types.Importer, p *listedPackage) (*Package, error) {
	var files []*ast.File
	var paths []string
	for _, name := range p.GoFiles {
		path := filepath.Join(p.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	info := NewInfo()
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", p.ImportPath, err)
	}
	ignored := make([]string, 0, len(p.IgnoredGoFiles))
	for _, name := range p.IgnoredGoFiles {
		ignored = append(ignored, filepath.Join(p.Dir, name))
	}
	return &Package{
		ImportPath:   p.ImportPath,
		Dir:          p.Dir,
		GoFiles:      paths,
		IgnoredFiles: ignored,
		Syntax:       files,
		Types:        tpkg,
		TypesInfo:    info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// StdImporter type-checks stand-alone fixture files (analysistest): it
// resolves the given stdlib import paths (and their dependencies) via
// `go list -export` once and returns the export-data importer.
func StdImporter(fset *token.FileSet, dir string, paths []string) (types.Importer, error) {
	if len(paths) == 0 {
		return exportImporter(fset, nil), nil
	}
	listed, err := goList(dir, paths)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exportImporter(fset, exports), nil
}
