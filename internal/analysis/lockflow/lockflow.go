// Package lockflow is the shared flow-sensitive mutex tracker behind
// the lockorder and blockinlock analyzers. It walks one function body
// maintaining the set of sync.Mutex/sync.RWMutex values held at each
// point, identifying a mutex by the types.Object of the field or
// variable it lives in (so `sh.mu` names the same lock in every method
// of the package, regardless of receiver spelling).
//
// The walker is deliberately conservative in the direction that avoids
// false positives: branches are merged by intersection (a lock is
// "held" after an if/switch only when every fall-through path holds
// it), loop bodies do not leak acquisitions past the loop, deferred
// unlocks keep the lock held to the end of the function, and branches
// that terminate (return, break, panic, os.Exit, log.Fatal) are
// excluded from the merge. TryLock and embedded (anonymous) mutexes
// are not modeled.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"eugene/internal/analysis"
)

// Lock identifies one mutex: Obj is the field or variable object (the
// package-wide identity), Name is the display form, "Type.field" for a
// struct field or the bare name for a variable.
type Lock struct {
	Obj  types.Object
	Name string
}

// Events receives the walk. Acquire fires when a lock is taken, with
// the set held at that moment (before the new lock is added). Node
// fires for every visited expression or statement node with the
// current held set; lock/unlock calls themselves, select communication
// clauses, and the bodies of nested function literals are not
// delivered. Held slices are live views — copy them to retain.
type Events struct {
	Acquire func(lk Lock, pos token.Pos, held []Lock)
	Node    func(n ast.Node, held []Lock)
}

// Walk runs the flow walker over one function body.
func Walk(pass *analysis.Pass, body *ast.BlockStmt, ev Events) {
	w := &walker{pass: pass, ev: ev}
	w.stmts(body.List, &heldSet{})
}

// AsLockCall classifies call as a mutex acquisition or release.
// acquire is true for Lock/RLock, false for Unlock/RUnlock; ok is
// false when the call is not a mutex method or the receiver cannot be
// resolved to a field or variable.
func AsLockCall(pass *analysis.Pass, call *ast.CallExpr) (lk Lock, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return Lock{}, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return Lock{}, false, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return Lock{}, false, false
	}
	lk, ok = resolveLockExpr(pass, sel.X)
	return lk, acquire, ok
}

// resolveLockExpr maps the receiver expression of a mutex method to a
// Lock identity: `x.mu` to the mu field object of x's named type, a
// plain identifier to its variable object.
func resolveLockExpr(pass *analysis.Pass, e ast.Expr) (Lock, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[e.Sel]
		if obj == nil {
			return Lock{}, false
		}
		name := namedTypeName(pass.TypesInfo.TypeOf(e.X))
		if name == "" {
			return Lock{}, false
		}
		return Lock{Obj: obj, Name: name + "." + e.Sel.Name}, true
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return Lock{}, false
		}
		return Lock{Obj: obj, Name: e.Name}, true
	}
	return Lock{}, false
}

// namedTypeName returns the name of t's (pointer-stripped) named type,
// or "" when t has none.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// heldSet is the ordered set of locks currently held.
type heldSet struct {
	locks []Lock
}

func (h *heldSet) add(lk Lock) {
	for _, l := range h.locks {
		if l.Obj == lk.Obj {
			return
		}
	}
	h.locks = append(h.locks, lk)
}

func (h *heldSet) remove(obj types.Object) {
	for i, l := range h.locks {
		if l.Obj == obj {
			h.locks = append(h.locks[:i], h.locks[i+1:]...)
			return
		}
	}
}

func (h *heldSet) clone() *heldSet {
	return &heldSet{locks: append([]Lock(nil), h.locks...)}
}

// intersectInto narrows h to the locks also present in every set of
// others.
func (h *heldSet) intersectInto(others []*heldSet) {
	kept := h.locks[:0]
	for _, l := range h.locks {
		in := true
		for _, o := range others {
			found := false
			for _, ol := range o.locks {
				if ol.Obj == l.Obj {
					found = true
					break
				}
			}
			if !found {
				in = false
				break
			}
		}
		if in {
			kept = append(kept, l)
		}
	}
	h.locks = kept
}

type walker struct {
	pass *analysis.Pass
	ev   Events
}

// stmts walks a statement list, mutating held in place; it reports
// whether the list definitely does not fall through.
func (w *walker) stmts(list []ast.Stmt, held *heldSet) bool {
	for _, s := range list {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt, held *heldSet) (terminated bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if lk, acquire, ok := AsLockCall(w.pass, call); ok {
				if acquire {
					if w.ev.Acquire != nil {
						w.ev.Acquire(lk, call.Pos(), held.locks)
					}
					held.add(lk)
				} else {
					held.remove(lk.Obj)
				}
				return false
			}
			w.visit(s.X, held)
			return w.isTerminalCall(call)
		}
		w.visit(s.X, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.visit(r, held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave this path; fallthrough transfers to a
		// clause walked separately. All are excluded from the merge.
		return true
	case *ast.DeferStmt:
		w.deferStmt(s, held)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.visit(a, held)
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		return w.ifStmt(s, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.visit(s.Cond, held)
		}
		body := held.clone()
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.visit(s.X, held)
		w.stmts(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		return w.caseClauses(s.Init, s.Tag, nil, s.Body, held)
	case *ast.TypeSwitchStmt:
		return w.caseClauses(s.Init, nil, s.Assign, s.Body, held)
	case *ast.SelectStmt:
		return w.selectStmt(s, held)
	default:
		w.visit(s, held)
	}
	return false
}

// deferStmt handles a defer: a deferred Unlock (direct or inside a
// deferred function literal) keeps the lock held for the rest of the
// function, which is exactly the walker's default, so it needs no
// state change; other deferred calls run at exit and are not visited.
func (w *walker) deferStmt(s *ast.DeferStmt, held *heldSet) {
	for _, a := range s.Call.Args {
		w.visit(a, held)
	}
}

func (w *walker) ifStmt(s *ast.IfStmt, held *heldSet) bool {
	if s.Init != nil {
		w.stmt(s.Init, held)
	}
	w.visit(s.Cond, held)
	thenHeld := held.clone()
	thenTerm := w.stmts(s.Body.List, thenHeld)
	elseHeld := held.clone()
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.stmt(s.Else, elseHeld)
	}
	var through []*heldSet
	if !thenTerm {
		through = append(through, thenHeld)
	}
	if !elseTerm {
		through = append(through, elseHeld)
	}
	if len(through) == 0 {
		return true
	}
	held.locks = append(held.locks[:0], through[0].locks...)
	held.intersectInto(through[1:])
	return false
}

// caseClauses walks a switch or type switch: each clause runs on its
// own copy of the held set and the fall-through outcomes are
// intersected. Without a default clause the zero-match path keeps the
// entry set.
func (w *walker) caseClauses(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, held *heldSet) bool {
	if init != nil {
		w.stmt(init, held)
	}
	if tag != nil {
		w.visit(tag, held)
	}
	if assign != nil {
		w.visit(assign, held)
	}
	var through []*heldSet
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.visit(e, held)
		}
		ch := held.clone()
		if !w.stmts(cc.Body, ch) {
			through = append(through, ch)
		}
	}
	if !hasDefault {
		through = append(through, held.clone())
	}
	if len(through) == 0 {
		return true
	}
	held.locks = append(held.locks[:0], through[0].locks...)
	held.intersectInto(through[1:])
	return false
}

// selectStmt delivers the select itself to Node (blockinlock judges it
// whole — a default clause makes it non-blocking) but not its
// communication clauses, then walks the clause bodies like switch
// cases. A select always runs some clause, so there is no implicit
// fall-through path.
func (w *walker) selectStmt(s *ast.SelectStmt, held *heldSet) bool {
	if w.ev.Node != nil {
		w.ev.Node(s, held.locks)
	}
	var through []*heldSet
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		ch := held.clone()
		if !w.stmts(cc.Body, ch) {
			through = append(through, ch)
		}
	}
	if len(through) == 0 {
		return true
	}
	held.locks = append(held.locks[:0], through[0].locks...)
	held.intersectInto(through[1:])
	return false
}

// visit delivers n and its children to the Node callback, skipping
// nested function literals (their bodies execute elsewhere).
func (w *walker) visit(n ast.Node, held *heldSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x != nil && w.ev.Node != nil {
			w.ev.Node(x, held.locks)
		}
		return true
	})
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// runtime.Goexit, and the log.Fatal family.
func (w *walker) isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := w.pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		fn, ok := w.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			switch fn.Name() {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		}
	}
	return false
}
