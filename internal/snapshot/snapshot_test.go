package snapshot

import (
	"bytes"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"eugene/internal/cache"
	"eugene/internal/dataset"
	"eugene/internal/gp"
	"eugene/internal/sched"
	"eugene/internal/staged"
	"eugene/internal/tensor"
)

// -update regenerates testdata/golden_v1.snap. Generation is fully
// deterministic (seeded rng, no training), so the fixture is
// reproducible on any platform.
var update = flag.Bool("update", false, "rewrite golden snapshot fixtures")

// goldenSnapshot builds the fixture bundle: a small staged model with a
// width ladder, head bottlenecks, and dropout (so every layer tag is
// exercised), plus a hand-made predictor. Everything is seeded; nothing
// depends on training or platform-specific float paths beyond IEEE-754
// arithmetic in NormFloat64, which Go defines exactly.
func goldenSnapshot(t testing.TB) *ModelSnapshot {
	t.Helper()
	cfg := staged.Config{
		In: 6, Hidden: 8, Classes: 3,
		StageCount: 3, BlocksPerStage: 1,
		StageWidths:     []int{4, 6, 8},
		HeadBottlenecks: []int{2, 3, 0},
		HeadDropout:     0.1,
	}
	m, err := staged.New(rand.New(rand.NewSource(42)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	priors := []float64{0.55, 0.7, 0.85}
	profiles := make([][]*gp.PiecewiseLinear, 3)
	for from := range profiles {
		profiles[from] = make([]*gp.PiecewiseLinear, 3)
		for to := from + 1; to < 3; to++ {
			pwl := &gp.PiecewiseLinear{}
			for i := 0; i <= 4; i++ {
				x := float64(i) / 4
				pwl.Knots = append(pwl.Knots, x)
				pwl.Vals = append(pwl.Vals, math.Min(1, x+0.1*float64(to-from)))
			}
			profiles[from][to] = pwl
		}
	}
	pred, err := sched.RestoreGPPredictor(priors, profiles)
	if err != nil {
		t.Fatal(err)
	}
	return &ModelSnapshot{
		Model:     m,
		Alpha:     0.25,
		StageAccs: []float64{0.61, 0.72, 0.83},
		Pred:      pred,
	}
}

// predictAll runs every stage on x and returns the flat bit patterns of
// all stage probabilities — the strictest round-trip equality check.
func predictAll(m *staged.Model, x []float64) []uint64 {
	outs := m.Predict(x, m.NumStages()-1)
	var bits []uint64
	for _, o := range outs {
		bits = append(bits, uint64(o.Pred))
		bits = append(bits, math.Float64bits(o.Conf))
		for _, p := range o.Probs {
			bits = append(bits, math.Float64bits(p))
		}
	}
	return bits
}

func sampleInputs(dim, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}

func TestModelRoundTripBitwise(t *testing.T) {
	// Property: train → snapshot → restore must give bitwise-identical
	// inference, single-sample and batched, plus identical metadata.
	cfg := dataset.SynthConfig{
		Classes: 3, Dim: 8, ModesPerClass: 1,
		TrainSize: 120, TestSize: 40,
		NoiseLo: 0.4, NoiseHi: 1.0, Overlap: 0.1,
	}
	train, _, err := dataset.SynthCIFAR(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := staged.DefaultConfig(8, 3)
	mcfg.Hidden = 12
	mcfg.BlocksPerStage = 1
	m, err := staged.New(rand.New(rand.NewSource(7)), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := staged.DefaultTrainConfig()
	tcfg.Epochs = 3
	if _, err := m.Train(tcfg, train); err != nil {
		t.Fatal(err)
	}
	curves, _ := m.Clone().ConfidenceCurves(train)
	gcfg := sched.DefaultGPPredictorConfig()
	gcfg.MaxPoints = 60
	pred, err := sched.NewGPPredictor(curves, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := &ModelSnapshot{Model: m, Alpha: 0.5, StageAccs: m.EvalAllStages(train), Pred: pred}

	var buf bytes.Buffer
	if err := EncodeModel(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if got.Alpha != orig.Alpha {
		t.Fatalf("alpha %v != %v", got.Alpha, orig.Alpha)
	}
	if len(got.StageAccs) != len(orig.StageAccs) {
		t.Fatalf("stage accs %v != %v", got.StageAccs, orig.StageAccs)
	}
	for i := range got.StageAccs {
		if math.Float64bits(got.StageAccs[i]) != math.Float64bits(orig.StageAccs[i]) {
			t.Fatalf("stage acc %d: %v != %v", i, got.StageAccs[i], orig.StageAccs[i])
		}
	}

	// Single-sample inference is bitwise identical at every stage.
	for i, x := range sampleInputs(8, 20, 11) {
		a := predictAll(orig.Model, x)
		b := predictAll(got.Model, x)
		if len(a) != len(b) {
			t.Fatalf("input %d: output shape changed", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("input %d: bitwise mismatch at %d", i, j)
			}
		}
	}

	// Batched stage execution is bitwise identical too (the serving
	// path).
	inputs := sampleInputs(8, 6, 13)
	hidA := append([][]float64(nil), inputs...)
	hidB := make([][]float64, len(inputs))
	for i, x := range inputs {
		hidB[i] = append([]float64(nil), x...)
	}
	ma, mb := orig.Model.Clone(), got.Model.Clone()
	for s := 0; s < ma.NumStages(); s++ {
		var outA, outB []staged.StageOutput
		nextA, outA := ma.ExecStageBatch(hidA, s, nil)
		nextB, outB := mb.ExecStageBatch(hidB, s, nil)
		for i := range outA {
			if outA[i].Pred != outB[i].Pred ||
				math.Float64bits(outA[i].Conf) != math.Float64bits(outB[i].Conf) {
				t.Fatalf("stage %d task %d: batch outputs diverge", s, i)
			}
		}
		hidA = make([][]float64, len(nextA))
		hidB = make([][]float64, len(nextB))
		for i := range nextA {
			hidA[i] = append([]float64(nil), nextA[i]...)
			hidB[i] = append([]float64(nil), nextB[i]...)
		}
	}

	// Predictor: priors and every profile knot/value bitwise equal, and
	// predictions agree.
	pa, pb := orig.Pred.StagePriors(), got.Pred.StagePriors()
	if len(pa) != len(pb) {
		t.Fatalf("prior count %d != %d", len(pb), len(pa))
	}
	for i := range pa {
		if math.Float64bits(pa[i]) != math.Float64bits(pb[i]) {
			t.Fatalf("prior %d: %v != %v", i, pb[i], pa[i])
		}
	}
	fa, fb := orig.Pred.Profiles(), got.Pred.Profiles()
	for from := range fa {
		for to := range fa[from] {
			a, b := fa[from][to], fb[from][to]
			if (a == nil) != (b == nil) {
				t.Fatalf("profile %d→%d presence mismatch", from, to)
			}
			if a == nil {
				continue
			}
			for i := range a.Knots {
				if math.Float64bits(a.Knots[i]) != math.Float64bits(b.Knots[i]) ||
					math.Float64bits(a.Vals[i]) != math.Float64bits(b.Vals[i]) {
					t.Fatalf("profile %d→%d knot %d diverges", from, to, i)
				}
			}
		}
	}
	for _, c := range []float64{0.1, 0.33, 0.5, 0.77, 0.95} {
		if a, b := orig.Pred.Predict(0, 0, c, 2), got.Pred.Predict(0, 0, c, 2); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("predict(%v): %v != %v", c, b, a)
		}
	}
}

func TestSubsetRoundTrip(t *testing.T) {
	cfg := dataset.SynthConfig{
		Classes: 5, Dim: 10, ModesPerClass: 1,
		TrainSize: 150, TestSize: 50,
		NoiseLo: 0.4, NoiseHi: 1.0, Overlap: 0.1,
	}
	train, test, err := dataset.SynthCIFAR(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cache.TrainSubset(train, []int{1, 3}, 8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeSubset(&buf, sub); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSubset(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.InputWidth() != sub.InputWidth() || len(got.Hot) != len(sub.Hot) {
		t.Fatalf("shape changed: in=%d hot=%v", got.InputWidth(), got.Hot)
	}
	if got.Params() != sub.Params() {
		t.Fatalf("params %d != %d", got.Params(), sub.Params())
	}
	for i := 0; i < test.Len(); i++ {
		x, _ := test.Sample(i)
		c1, conf1, o1 := sub.Predict(x)
		c2, conf2, o2 := got.Predict(x)
		if c1 != c2 || o1 != o2 || math.Float64bits(conf1) != math.Float64bits(conf2) {
			t.Fatalf("sample %d: (%d,%v,%v) != (%d,%v,%v)", i, c1, conf1, o1, c2, conf2, o2)
		}
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.snap")
	s := goldenSnapshot(t)
	if err := SaveModel(path, s); err != nil {
		t.Fatal(err)
	}
	// No temp litter after a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "m.snap" {
		t.Fatalf("directory contents: %v", entries)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	x := sampleInputs(6, 1, 5)[0]
	a, b := predictAll(s.Model, x), predictAll(got.Model, x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored model diverges at %d", i)
		}
	}
	// Overwriting an existing snapshot also succeeds (rename over).
	if err := SaveModel(path, s); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeModel(&buf, goldenSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 4, len(magic), len(magic) + 13, len(raw) / 2, len(raw) - 1} {
			if _, err := DecodeModel(bytes.NewReader(raw[:n])); err == nil {
				t.Fatalf("truncation to %d bytes accepted", n)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		// Flip one byte in each region: header, early body (topology),
		// late body (weights), checksum.
		for _, off := range []int{9, len(magic) + 14, len(raw) / 2, len(raw) - 2} {
			mut := append([]byte(nil), raw...)
			mut[off] ^= 0x40
			if _, err := DecodeModel(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at %d accepted", off)
			}
		}
	})
	t.Run("badmagic", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		mut[0] = 'X'
		if _, err := DecodeModel(bytes.NewReader(mut)); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("futureversion", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		mut[len(magic)] = FormatVersion + 1
		if _, err := DecodeModel(bytes.NewReader(mut)); err == nil {
			t.Fatal("future version accepted")
		}
	})
	t.Run("trailing", func(t *testing.T) {
		mut := append(append([]byte(nil), raw...), 0xAB)
		if _, err := DecodeModel(bytes.NewReader(mut)); err == nil {
			t.Fatal("trailing garbage accepted")
		}
	})
	t.Run("kindmismatch", func(t *testing.T) {
		if _, err := DecodeSubset(bytes.NewReader(raw)); err == nil {
			t.Fatal("model snapshot decoded as subset")
		}
	})
}

// TestGoldenDecodeCompat pins the on-disk format: the committed fixture
// must keep decoding, and re-encoding the decoded bundle must reproduce
// it byte for byte. Any codec change that breaks either fails CI; a
// deliberate format change requires a version bump, decode support for
// the old version, and a new fixture (testdata/golden_v<N>.snap).
func TestGoldenDecodeCompat(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.snap")
	want := goldenSnapshot(t)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := SaveModel(path, want); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update): %v", err)
	}
	got, err := DecodeModel(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden fixture no longer decodes — breaking format change: %v", err)
	}
	// Decoded metadata matches the generator exactly.
	if got.Alpha != want.Alpha {
		t.Fatalf("alpha = %v, want %v", got.Alpha, want.Alpha)
	}
	if got.Model.In != 6 || got.Model.Classes != 3 || got.Model.NumStages() != 3 {
		t.Fatalf("topology changed: in=%d classes=%d stages=%d", got.Model.In, got.Model.Classes, got.Model.NumStages())
	}
	if got.Pred == nil || got.Pred.NumStages() != 3 {
		t.Fatal("predictor missing from golden decode")
	}
	// Weights are bitwise what the seeded generator produces.
	x := sampleInputs(6, 3, 99)
	for i, in := range x {
		a, b := predictAll(want.Model, in), predictAll(got.Model, in)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("golden inference diverges (input %d, element %d)", i, j)
			}
		}
	}
	// Re-encode reproduces the file exactly: the encoder still writes
	// format v1.
	var buf bytes.Buffer
	if err := EncodeModel(&buf, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatalf("re-encoded fixture differs from committed bytes (%d vs %d) — codec drifted; bump FormatVersion", buf.Len(), len(raw))
	}
}

func TestDecodeRejectsStructuralLies(t *testing.T) {
	// A CRC-valid file whose payload claims impossible shapes must be
	// rejected by validation, not crash a worker later. Craft one by
	// encoding a valid bundle, then re-framing a mutated body.
	s := goldenSnapshot(t)
	var buf bytes.Buffer
	if err := EncodeModel(&buf, s); err != nil {
		t.Fatal(err)
	}
	_, body, err := deframe(bytes.NewReader(buf.Bytes()), kindModel)
	if err != nil {
		t.Fatal(err)
	}
	// Claim classes=7 while every head still outputs 3: FromParts must
	// refuse. classes is the third u32 of the body.
	mut := append([]byte(nil), body...)
	mut[8] = 7
	var reframed bytes.Buffer
	if err := frame(&reframed, kindModel, mut); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeModel(bytes.NewReader(reframed.Bytes())); err == nil {
		t.Fatal("inconsistent class count accepted")
	}
}

func TestEnsureTensorFromSliceAliasSafe(t *testing.T) {
	// Decoded Dense weights share the decoded slice; make sure writes
	// through the matrix view are visible (sanity on FromSlice
	// semantics the decoder relies on).
	data := []float64{1, 2, 3, 4}
	m := tensor.FromSlice(2, 2, data)
	m.Set(0, 0, 9)
	if data[0] != 9 {
		t.Fatal("FromSlice no longer aliases its input")
	}
}
