package snapshot

import (
	"bytes"
	"fmt"
	"io"

	"eugene/internal/cache"
)

// DeviceState bundles one device's server-side edge-cache state (paper
// Section II-B) for migration: the model the device follows and its
// class-frequency tracker. It is the payload of GET/PUT
// /v1/devices/{id}/state and of the cluster router's device-state
// handoff on a planned drain — the same CRC'd framing as model
// snapshots, so a truncated or corrupted migration payload is rejected
// at decode, never half-installed.
type DeviceState struct {
	Model   string
	Tracker cache.TrackerState
}

// maxDeviceStateModel bounds the decoded model-name field; model names
// are HTTP path segments, never megabytes.
const maxDeviceStateModel = 4096

// EncodeDeviceState writes a device's cache state to w in snapshot
// format (kind 5). The tracker state is stored exactly — scaled counts,
// total, and scale factor as raw IEEE-754 bits — so a tracker restored
// from the wire answers every cache decision bitwise identically.
func EncodeDeviceState(w io.Writer, s *DeviceState) error {
	if s == nil {
		return fmt.Errorf("snapshot: nil device state")
	}
	if s.Model == "" {
		return fmt.Errorf("snapshot: device state with empty model name")
	}
	if len(s.Model) > maxDeviceStateModel {
		return fmt.Errorf("snapshot: device state model name of %d bytes", len(s.Model))
	}
	if err := s.Tracker.Validate(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	var body bytes.Buffer
	e := &encoder{w: &body}
	e.str(s.Model)
	e.f64(s.Tracker.Decay)
	e.f64(s.Tracker.Inc)
	e.f64(s.Tracker.Total)
	e.f64s(s.Tracker.Counts)
	if e.err != nil {
		return e.err
	}
	return frame(w, kindDeviceState, body.Bytes())
}

// DecodeDeviceState reads a device cache state, verifying framing,
// checksum, and tracker-state validity (scale range, finite
// non-negative counts), so a corrupt payload cannot install a tracker
// that later yields NaN shares or phantom hot classes. Class-count
// compatibility with the target model is the installer's check — the
// codec does not know the model.
func DecodeDeviceState(r io.Reader) (*DeviceState, error) {
	_, body, err := deframe(r, kindDeviceState)
	if err != nil {
		return nil, err
	}
	d := &decoder{b: body}
	s := &DeviceState{Model: d.str()}
	s.Tracker.Decay = d.f64()
	s.Tracker.Inc = d.f64()
	s.Tracker.Total = d.f64()
	s.Tracker.Counts = d.f64s()
	if err := d.finish(); err != nil {
		return nil, err
	}
	if s.Model == "" {
		return nil, fmt.Errorf("snapshot: device state with empty model name")
	}
	if err := s.Tracker.Validate(); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return s, nil
}

// str writes a length-prefixed UTF-8 string.
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.w.WriteString(s)
}

// str reads a length-prefixed string, bounded so a hostile length
// cannot demand a giant allocation.
func (d *decoder) str() string {
	n := int(d.u32())
	if d.err != nil {
		return ""
	}
	if n > maxDeviceStateModel || n > len(d.b)-d.off {
		d.fail("string of %d bytes exceeds body", n)
		return ""
	}
	return string(d.take(n))
}
