package snapshot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"eugene/internal/cache"
)

func sampleDeviceState(t *testing.T) *DeviceState {
	t.Helper()
	f, err := cache.NewFreqTracker(4, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		f.ObserveN(i%4, 1+i%2)
	}
	return &DeviceState{Model: "edge-model", Tracker: f.Export()}
}

func TestDeviceStateRoundTrip(t *testing.T) {
	want := sampleDeviceState(t)
	var buf bytes.Buffer
	if err := EncodeDeviceState(&buf, want); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeDeviceState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Model != want.Model {
		t.Fatalf("model %q != %q", got.Model, want.Model)
	}
	if math.Float64bits(got.Tracker.Decay) != math.Float64bits(want.Tracker.Decay) ||
		math.Float64bits(got.Tracker.Inc) != math.Float64bits(want.Tracker.Inc) ||
		math.Float64bits(got.Tracker.Total) != math.Float64bits(want.Tracker.Total) {
		t.Fatalf("tracker scalars changed: %+v vs %+v", got.Tracker, want.Tracker)
	}
	for i := range want.Tracker.Counts {
		if math.Float64bits(got.Tracker.Counts[i]) != math.Float64bits(want.Tracker.Counts[i]) {
			t.Fatalf("count %d changed: %v vs %v", i, got.Tracker.Counts[i], want.Tracker.Counts[i])
		}
	}
}

// Every corrupted byte must be caught by the CRC (or, for the few
// positions whose corruption keeps the frame self-consistent, by
// validation) — never decoded into a silently different tracker.
func TestDeviceStateRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeDeviceState(&buf, sampleDeviceState(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := 0; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		if _, err := DecodeDeviceState(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
}

func TestDeviceStateRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeDeviceState(&buf, sampleDeviceState(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 1, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodeDeviceState(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
	// Trailing garbage is rejected too.
	if _, err := DecodeDeviceState(bytes.NewReader(append(raw, 0))); err == nil {
		t.Fatal("trailing byte went undetected")
	}
}

// A device-state frame is not a model snapshot and vice versa: kind
// bytes must not be interchangeable.
func TestDeviceStateRejectsWrongKind(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeDeviceState(&buf, sampleDeviceState(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeModel(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("DecodeModel accepted a device-state frame")
	}
}

func TestEncodeDeviceStateValidates(t *testing.T) {
	ok := sampleDeviceState(t)
	var buf bytes.Buffer
	if err := EncodeDeviceState(&buf, nil); err == nil {
		t.Fatal("nil state encoded")
	}
	noModel := *ok
	noModel.Model = ""
	if err := EncodeDeviceState(&buf, &noModel); err == nil {
		t.Fatal("empty model name encoded")
	}
	longName := *ok
	longName.Model = strings.Repeat("x", maxDeviceStateModel+1)
	if err := EncodeDeviceState(&buf, &longName); err == nil {
		t.Fatal("oversized model name encoded")
	}
	badTracker := *ok
	badTracker.Tracker.Counts = append([]float64(nil), ok.Tracker.Counts...)
	badTracker.Tracker.Counts[0] = math.NaN()
	if err := EncodeDeviceState(&buf, &badTracker); err == nil {
		t.Fatal("NaN count encoded")
	}
}

func FuzzDecodeDeviceState(f *testing.F) {
	var buf bytes.Buffer
	fr, err := cache.NewFreqTracker(3, 0.99)
	if err != nil {
		f.Fatal(err)
	}
	fr.ObserveN(1, 3)
	if err := EncodeDeviceState(&buf, &DeviceState{Model: "m", Tracker: fr.Export()}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("EUGSNP01garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeDeviceState(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must be installable: valid tracker state
		// and a usable model name.
		if s.Model == "" || len(s.Model) > maxDeviceStateModel {
			t.Fatalf("decoded state with bad model name %q", s.Model)
		}
		if err := s.Tracker.Validate(); err != nil {
			t.Fatalf("decoded state fails validation: %v", err)
		}
	})
}
