// Package snapshot gives every trained Eugene artifact a durable,
// versioned binary form: staged model weights and topology, the
// calibration alpha, and the GP predictor's piecewise-linear profiles
// and priors, plus the reduced hot-class subset models shipped to
// devices (paper Section II-B). Snapshots are what make Eugene a
// *service* rather than a process — the server can restart without
// forgetting models, and clients can download artifacts over the wire.
//
// Guarantees:
//
//   - Round trip is lossless: every float64 is stored as its IEEE-754
//     bit pattern, so a restored model's Infer/InferBatch outputs are
//     bitwise identical to the original's. The float32 artifact kinds
//     (EncodeModelF32/EncodeSubsetF32, half the bytes) round weights to
//     serving precision once at encode; decode widens them back, and
//     re-encoding at f32 reproduces the file byte for byte.
//   - Files are framed with a magic string, a format version, and a
//     CRC-32 of the body; truncated, corrupted, or trailing-garbage
//     files are rejected at decode, never half-applied.
//   - Saves are atomic: bytes land in a temp file in the target
//     directory which is fsynced and renamed over the destination, so a
//     crash mid-write leaves either the old snapshot or the new one.
//
// The wire format is little-endian with fixed-width lengths; see
// FormatVersion for compatibility rules (decoders accept only versions
// they know, and the committed golden fixture in testdata/ pins the
// format so accidental codec changes fail CI).
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"eugene/internal/cache"
	"eugene/internal/failpoint"
	"eugene/internal/gp"
	"eugene/internal/nn"
	"eugene/internal/sched"
	"eugene/internal/staged"
	"eugene/internal/tensor"
)

// magic identifies Eugene snapshot files.
const magic = "EUGSNP01"

// FormatVersion is the current codec version. Decoders reject files
// written by unknown (newer) versions; bumping this requires keeping
// decode support for every older version still in the golden fixtures.
const FormatVersion = 1

// Artifact kinds, one byte after the version. The F32 kinds carry the
// same structure as their float64 twins but store Dense weight/bias
// payloads as IEEE-754 float32 bits — half the bytes, the natural wire
// form for the f32 serving tier and for subset models downloaded to
// bandwidth-constrained edge devices. Decoders accept either kind and
// widen f32 payloads to float64 (losslessly reversible: a re-encode at
// f32 reproduces the file byte for byte).
const (
	kindModel       = 1 // full staged model + calibration + predictor bundle
	kindSubset      = 2 // reduced hot-class device model
	kindModelF32    = 3 // model bundle with float32 dense payloads
	kindSubsetF32   = 4 // subset model with float32 dense payloads
	kindDeviceState = 5 // per-device frequency-tracker state (drain handoff)
)

// Layer tags for the nn layer tree.
const (
	tagDense      = 1
	tagReLU       = 2
	tagDropout    = 3
	tagResidual   = 4
	tagSequential = 5
	tagDense32    = 6 // dense with float32 weight/bias payloads
)

// Decode-time sanity bounds: a CRC-valid but hostile file must not be
// able to demand absurd allocations or unbounded recursion.
const (
	maxElems  = 1 << 26 // float64s per tensor (512 MiB)
	maxStages = 1 << 10
	maxLayers = 1 << 14 // layers per Sequential
	maxDepth  = 64      // layer-tree nesting
)

// dropoutSeed seeds restored Dropout layers. Dropout is the identity at
// inference, so the stream never affects served answers; a fixed seed
// just keeps restored models deterministic if one is later fine-tuned.
const dropoutSeed = 1

// ModelSnapshot bundles everything the registry knows about one trained
// model: the staged network, the chosen entropy-calibration alpha (0 if
// uncalibrated), the recorded per-stage accuracies, and the GP
// confidence predictor (nil if never built).
type ModelSnapshot struct {
	Model     *staged.Model
	Alpha     float64
	StageAccs []float64
	Pred      *sched.GPPredictor
}

// VersionOf returns the content version of encoded snapshot bytes: a
// truncated SHA-256 over the exact byte stream. Because encoding is
// deterministic (fixed field order, no map iteration) and a
// decode→re-encode round trip is byte-identical (the golden-fixture CI
// gate), the version computed over a pushed snapshot equals the version
// a replica reports for the installed model — the equality the cluster
// router's divergence detection rests on.
func VersionOf(raw []byte) string {
	sum := sha256.Sum256(raw)
	return fmt.Sprintf("sha256:%x", sum[:16])
}

// EncodeModel writes the bundle to w in snapshot format with float64
// weight payloads (lossless for the training weights).
func EncodeModel(w io.Writer, s *ModelSnapshot) error {
	return encodeModel(w, s, false)
}

// EncodeModelF32 writes the bundle with float32 dense payloads — about
// half the bytes of EncodeModel. Weights are rounded to float32 (the
// serving tier's precision); calibration alpha, stage accuracies, and
// the predictor's PWL profiles stay float64.
func EncodeModelF32(w io.Writer, s *ModelSnapshot) error {
	return encodeModel(w, s, true)
}

func encodeModel(w io.Writer, s *ModelSnapshot, f32 bool) error {
	if s == nil || s.Model == nil {
		return fmt.Errorf("snapshot: nil model")
	}
	var body bytes.Buffer
	e := &encoder{w: &body, dense32: f32}
	e.model(s.Model)
	e.f64(s.Alpha)
	e.f64s(s.StageAccs)
	e.bool(s.Pred != nil)
	if s.Pred != nil {
		priors := s.Pred.StagePriors()
		profiles := s.Pred.Profiles()
		e.f64s(priors)
		for from := range priors {
			for to := from + 1; to < len(priors); to++ {
				pwl := profiles[from][to]
				if pwl == nil {
					return fmt.Errorf("snapshot: predictor profile %d→%d missing", from, to)
				}
				e.f64s(pwl.Knots)
				e.f64s(pwl.Vals)
			}
		}
	}
	if e.err != nil {
		return e.err
	}
	kind := byte(kindModel)
	if f32 {
		kind = kindModelF32
	}
	return frame(w, kind, body.Bytes())
}

// DecodeModel reads a model bundle, verifying framing, checksum, and
// structural consistency (layer widths, stage topology, predictor
// profiles) so a malformed file cannot panic a worker later.
func DecodeModel(r io.Reader) (*ModelSnapshot, error) {
	kind, body, err := deframe(r, kindModel, kindModelF32)
	if err != nil {
		return nil, err
	}
	d := &decoder{b: body, dense32: kind == kindModelF32}
	m, err := d.model()
	if err != nil {
		return nil, err
	}
	s := &ModelSnapshot{Model: m}
	s.Alpha = d.f64()
	s.StageAccs = d.f64s()
	if d.bool() {
		priors := d.f64s()
		if len(priors) > maxStages {
			return nil, fmt.Errorf("snapshot: %d predictor stages", len(priors))
		}
		profiles := make([][]*gp.PiecewiseLinear, len(priors))
		for from := range priors {
			profiles[from] = make([]*gp.PiecewiseLinear, len(priors))
		}
		for from := range priors {
			for to := from + 1; to < len(priors); to++ {
				pwl := &gp.PiecewiseLinear{Knots: d.f64s(), Vals: d.f64s()}
				profiles[from][to] = pwl
			}
		}
		if d.err != nil {
			return nil, d.err
		}
		pred, err := sched.RestoreGPPredictor(priors, profiles)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		if pred.NumStages() != m.NumStages() {
			return nil, fmt.Errorf("snapshot: predictor covers %d stages, model has %d", pred.NumStages(), m.NumStages())
		}
		s.Pred = pred
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodeSubset writes a reduced hot-class device model to w with
// float64 payloads.
func EncodeSubset(w io.Writer, m *cache.SubsetModel) error {
	return encodeSubset(w, m, false)
}

// EncodeSubsetF32 writes a reduced device model with float32 dense
// payloads — half the download for an edge device fetching its cached
// hot-class model.
func EncodeSubsetF32(w io.Writer, m *cache.SubsetModel) error {
	return encodeSubset(w, m, true)
}

func encodeSubset(w io.Writer, m *cache.SubsetModel, f32 bool) error {
	if m == nil || m.Net == nil {
		return fmt.Errorf("snapshot: nil subset model")
	}
	var body bytes.Buffer
	e := &encoder{w: &body, dense32: f32}
	e.u32(uint32(m.InputWidth()))
	e.ints(m.Hot)
	e.layer(m.Net)
	if e.err != nil {
		return e.err
	}
	kind := byte(kindSubset)
	if f32 {
		kind = kindSubsetF32
	}
	return frame(w, kind, body.Bytes())
}

// DecodeSubset reads a reduced device model (either precision).
func DecodeSubset(r io.Reader) (*cache.SubsetModel, error) {
	kind, body, err := deframe(r, kindSubset, kindSubsetF32)
	if err != nil {
		return nil, err
	}
	d := &decoder{b: body, dense32: kind == kindSubsetF32}
	in := int(d.u32())
	hot := d.ints()
	l, err := d.layer(0)
	if err != nil {
		return nil, err
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	net, ok := l.(*nn.Sequential)
	if !ok {
		return nil, fmt.Errorf("snapshot: subset net is %T, want *nn.Sequential", l)
	}
	if out, err := nn.OutputWidth(net, in); err != nil {
		return nil, fmt.Errorf("snapshot: subset net: %w", err)
	} else if out != len(hot)+1 {
		return nil, fmt.Errorf("snapshot: subset net outputs %d classes for %d hot + other", out, len(hot))
	}
	sub, err := cache.RestoreSubset(net, hot, in)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return sub, nil
}

// SaveModel atomically writes the bundle to path: bytes go to a temp
// file in the same directory, are fsynced, and the temp file is renamed
// over path, so a crash mid-save never leaves a torn snapshot.
func SaveModel(path string, s *ModelSnapshot) error {
	return saveAtomic(path, func(w io.Writer) error { return EncodeModel(w, s) })
}

// LoadModel reads a bundle from path.
func LoadModel(path string) (*ModelSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := DecodeModel(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	return s, nil
}

// saveAtomic writes via temp-file-then-rename in path's directory.
func saveAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := failpoint.Inject("snapshot.save.write"); err != nil {
		return fmt.Errorf("snapshot: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("snapshot: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("snapshot: chmod %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmp.Name(), err)
	}
	name := tmp.Name()
	tmp = nil
	if err := failpoint.Inject("snapshot.save.rename"); err != nil {
		//lint:ignore uncheckederr best-effort cleanup of the temp file; the injected failure is the error that matters
		os.Remove(name)
		return fmt.Errorf("snapshot: publishing %s: %w", path, err)
	}
	if err := os.Rename(name, path); err != nil {
		//lint:ignore uncheckederr best-effort cleanup of the temp file; the rename failure below is the error that matters
		os.Remove(name)
		return fmt.Errorf("snapshot: publishing %s: %w", path, err)
	}
	return nil
}

// frame writes magic | version | kind | body-length | body | crc32,
// where the checksum covers version through body.
func frame(w io.Writer, kind byte, body []byte) error {
	var hdr bytes.Buffer
	hdr.WriteString(magic)
	var meta [13]byte
	binary.LittleEndian.PutUint32(meta[0:4], FormatVersion)
	meta[4] = kind
	binary.LittleEndian.PutUint64(meta[5:13], uint64(len(body)))
	hdr.Write(meta[:])
	crc := crc32.NewIEEE()
	crc.Write(meta[:])
	crc.Write(body)
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("snapshot: writing body: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("snapshot: writing checksum: %w", err)
	}
	return nil
}

// deframe validates magic, version, kind (one of wantKinds), length,
// and checksum, and returns the matched kind and body bytes.
func deframe(r io.Reader, wantKinds ...byte) (byte, []byte, error) {
	raw, err := io.ReadAll(io.LimitReader(r, 1<<31))
	if err != nil {
		return 0, nil, fmt.Errorf("snapshot: reading: %w", err)
	}
	const hdrLen = len(magic) + 13
	if len(raw) < hdrLen+4 {
		return 0, nil, fmt.Errorf("snapshot: file truncated (%d bytes)", len(raw))
	}
	if string(raw[:len(magic)]) != magic {
		return 0, nil, fmt.Errorf("snapshot: bad magic %q", raw[:len(magic)])
	}
	meta := raw[len(magic):hdrLen]
	version := binary.LittleEndian.Uint32(meta[0:4])
	if version == 0 || version > FormatVersion {
		return 0, nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads ≤ %d)", version, FormatVersion)
	}
	kind := meta[4]
	ok := false
	for _, w := range wantKinds {
		if kind == w {
			ok = true
			break
		}
	}
	if !ok {
		return 0, nil, fmt.Errorf("snapshot: artifact kind %d, want one of %v", kind, wantKinds)
	}
	bodyLen := binary.LittleEndian.Uint64(meta[5:13])
	if bodyLen != uint64(len(raw)-hdrLen-4) {
		return 0, nil, fmt.Errorf("snapshot: body length %d does not match file (%d)", bodyLen, len(raw)-hdrLen-4)
	}
	body := raw[hdrLen : len(raw)-4]
	crc := crc32.NewIEEE()
	crc.Write(meta)
	crc.Write(body)
	if got := binary.LittleEndian.Uint32(raw[len(raw)-4:]); got != crc.Sum32() {
		return 0, nil, fmt.Errorf("snapshot: checksum mismatch (file %08x, computed %08x)", got, crc.Sum32())
	}
	return kind, body, nil
}

// encoder writes the little-endian body primitives, capturing the first
// error (bytes.Buffer writes cannot fail, but the encoder is also used
// for structural errors like unsupported layer types).
type encoder struct {
	w   *bytes.Buffer
	err error
	// dense32 selects float32 dense payloads (tagDense32) — the f32
	// artifact kinds.
	dense32 bool
}

func (e *encoder) u8(v byte) { e.w.WriteByte(v) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.w.Write(b[:])
}

func (e *encoder) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	e.w.Write(b[:])
}

func (e *encoder) f64s(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

// f32s writes v rounded to float32 bit patterns — the half-width dense
// payload of the f32 artifact kinds.
func (e *encoder) f32s(v []float64) {
	e.u32(uint32(len(v)))
	var b [4]byte
	for _, x := range v {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(float32(x)))
		e.w.Write(b[:])
	}
}

func (e *encoder) ints(v []int) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(int64(x)))
		e.w.Write(b[:])
	}
}

func (e *encoder) u32s(v []int) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u32(uint32(x))
	}
}

// model encodes topology dims, the stem, and per-stage body/head layer
// trees.
func (e *encoder) model(m *staged.Model) {
	e.u32(uint32(m.In))
	e.u32(uint32(m.Hidden))
	e.u32(uint32(m.Classes))
	e.u32s(m.Widths)
	e.layer(m.Stem)
	e.u32(uint32(len(m.Stages)))
	for _, s := range m.Stages {
		e.layer(s.Body)
		e.layer(s.Head)
	}
}

// layer encodes one nn layer tree node.
func (e *encoder) layer(l nn.Layer) {
	switch l := l.(type) {
	case *nn.Dense:
		if e.dense32 {
			e.u8(tagDense32)
			e.u32(uint32(l.In))
			e.u32(uint32(l.Out))
			e.f32s(l.W.Data)
			e.f32s(l.B)
			break
		}
		e.u8(tagDense)
		e.u32(uint32(l.In))
		e.u32(uint32(l.Out))
		e.f64s(l.W.Data)
		e.f64s(l.B)
	case *nn.ReLU:
		e.u8(tagReLU)
	case *nn.Dropout:
		e.u8(tagDropout)
		e.f64(l.Rate)
		e.bool(l.MC)
	case *nn.Residual:
		e.u8(tagResidual)
		e.layer(l.Body)
	case *nn.Sequential:
		e.u8(tagSequential)
		e.u32(uint32(len(l.Layers)))
		for _, c := range l.Layers {
			e.layer(c)
		}
	default:
		if e.err == nil {
			e.err = fmt.Errorf("snapshot: unsupported layer type %T", l)
		}
	}
}

// decoder reads body primitives with error latching and bounds checks.
type decoder struct {
	b   []byte
	off int
	err error
	// dense32 records the artifact kind's precision: f32 kinds must use
	// tagDense32 and f64 kinds tagDense, so a mislabeled file (an
	// "f64" snapshot carrying rounded f32 weights, or vice versa)
	// cannot decode — the kind byte keeps its documented meaning.
	dense32 bool
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("body truncated (need %d bytes at offset %d of %d)", n, d.off, len(d.b))
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *decoder) f64s() []float64 {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n > maxElems || n*8 > len(d.b)-d.off {
		d.fail("float slice of %d elements exceeds body", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// f32s reads a float32 slice widened to float64 (lossless; re-encoding
// at f32 reproduces the original bits).
func (d *decoder) f32s() []float64 {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n > maxElems || n*4 > len(d.b)-d.off {
		d.fail("float32 slice of %d elements exceeds body", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		b := d.take(4)
		if b == nil {
			return nil
		}
		out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
	}
	return out
}

func (d *decoder) ints() []int {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n > maxElems || n*8 > len(d.b)-d.off {
		d.fail("int slice of %d elements exceeds body", n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		b := d.take(8)
		if b == nil {
			return nil
		}
		out[i] = int(int64(binary.LittleEndian.Uint64(b)))
	}
	return out
}

func (d *decoder) u32s() []int {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n > maxElems || n*4 > len(d.b)-d.off {
		d.fail("u32 slice of %d elements exceeds body", n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.u32())
	}
	return out
}

// finish rejects trailing garbage after a structurally complete decode.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("snapshot: %d trailing bytes after payload", len(d.b)-d.off)
	}
	return nil
}

// model decodes and structurally validates a staged model.
func (d *decoder) model() (*staged.Model, error) {
	in := int(d.u32())
	hidden := int(d.u32())
	classes := int(d.u32())
	widths := d.u32s()
	stem, err := d.layer(0)
	if err != nil {
		return nil, err
	}
	nStages := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if nStages < 1 || nStages > maxStages {
		return nil, fmt.Errorf("snapshot: %d stages", nStages)
	}
	stages := make([]*staged.Stage, nStages)
	for i := range stages {
		body, err := d.layer(0)
		if err != nil {
			return nil, err
		}
		head, err := d.layer(0)
		if err != nil {
			return nil, err
		}
		stages[i] = &staged.Stage{Body: body, Head: head}
	}
	if d.err != nil {
		return nil, d.err
	}
	m, err := staged.FromParts(stem, stages, in, hidden, classes, widths)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return m, nil
}

// layer decodes one layer tree node, enforcing the recursion and fanout
// bounds.
func (d *decoder) layer(depth int) (nn.Layer, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("snapshot: layer tree deeper than %d", maxDepth)
	}
	tag := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	switch tag {
	case tagDense, tagDense32:
		if (tag == tagDense32) != d.dense32 {
			return nil, fmt.Errorf("snapshot: dense tag %d does not match artifact kind precision", tag)
		}
		in := int(d.u32())
		out := int(d.u32())
		var w, b []float64
		if tag == tagDense32 {
			w = d.f32s()
			b = d.f32s()
		} else {
			w = d.f64s()
			b = d.f64s()
		}
		if d.err != nil {
			return nil, d.err
		}
		if in < 1 || out < 1 || in*out > maxElems {
			return nil, fmt.Errorf("snapshot: dense %d→%d out of range", in, out)
		}
		if len(w) != in*out || len(b) != out {
			return nil, fmt.Errorf("snapshot: dense %d→%d with %d weights, %d biases", in, out, len(w), len(b))
		}
		return &nn.Dense{
			In: in, Out: out,
			W:     tensor.FromSlice(out, in, w),
			B:     b,
			GradW: tensor.NewMatrix(out, in),
			GradB: make([]float64, out),
		}, nil
	case tagReLU:
		return nn.NewReLU(), nil
	case tagDropout:
		rate := d.f64()
		mc := d.bool()
		if d.err != nil {
			return nil, d.err
		}
		if math.IsNaN(rate) || rate < 0 || rate >= 1 {
			return nil, fmt.Errorf("snapshot: dropout rate %v outside [0,1)", rate)
		}
		drop := nn.NewDropout(rand.New(rand.NewSource(dropoutSeed)), rate)
		drop.MC = mc
		return drop, nil
	case tagResidual:
		body, err := d.layer(depth + 1)
		if err != nil {
			return nil, err
		}
		return nn.NewResidual(body), nil
	case tagSequential:
		n := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if n > maxLayers {
			return nil, fmt.Errorf("snapshot: sequential of %d layers", n)
		}
		layers := make([]nn.Layer, n)
		for i := range layers {
			c, err := d.layer(depth + 1)
			if err != nil {
				return nil, err
			}
			layers[i] = c
		}
		return nn.NewSequential(layers...), nil
	default:
		return nil, fmt.Errorf("snapshot: unknown layer tag %d", tag)
	}
}
