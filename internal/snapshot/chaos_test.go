package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"eugene/internal/failpoint"
)

// TestSaveModelFailpoints arms each persistence seam in turn and checks
// the crash-safety contract saveAtomic promises: the injected error
// surfaces to the caller, the destination is never torn (either the old
// bytes or nothing), and no temp file is left behind.
func TestSaveModelFailpoints(t *testing.T) {
	snap := goldenSnapshot(t)
	for _, site := range []string{"snapshot.save.write", "snapshot.save.rename"} {
		t.Run(site, func(t *testing.T) {
			failpoint.DisableAll()
			failpoint.ResetCounts()
			if err := failpoint.Enable(site, "error(disk gone)"); err != nil {
				t.Fatal(err)
			}
			defer failpoint.DisableAll()

			dir := t.TempDir()
			path := filepath.Join(dir, "m.snap")
			err := SaveModel(path, snap)
			var fp *failpoint.Error
			if !errors.As(err, &fp) || fp.Site != site {
				t.Fatalf("SaveModel = %v, want injected failure at %s", err, site)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("destination exists after failed save (stat: %v)", err)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 0 {
				t.Fatalf("temp litter after failed save: %v", entries)
			}
			if failpoint.Counts()[site] != 1 {
				t.Fatalf("site %s fired %d times, want 1", site, failpoint.Counts()[site])
			}

			// The seam disarmed, the same save must succeed and survive a
			// round trip — the failpoint is a no-op when off.
			failpoint.DisableAll()
			if err := SaveModel(path, snap); err != nil {
				t.Fatalf("SaveModel after disarm: %v", err)
			}
			if _, err := LoadModel(path); err != nil {
				t.Fatalf("LoadModel after disarm: %v", err)
			}
		})
	}
}

// TestSaveModelOverwriteKeepsOldOnFailure checks the other half of the
// atomicity contract: a failed re-save must leave the previous snapshot
// intact and loadable.
func TestSaveModelOverwriteKeepsOldOnFailure(t *testing.T) {
	snap := goldenSnapshot(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "m.snap")
	if err := SaveModel(path, snap); err != nil {
		t.Fatal(err)
	}

	failpoint.DisableAll()
	if err := failpoint.Enable("snapshot.save.rename", "error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	if err := SaveModel(path, snap); err == nil {
		t.Fatal("re-save with rename failpoint armed succeeded")
	}
	failpoint.DisableAll()
	if _, err := LoadModel(path); err != nil {
		t.Fatalf("old snapshot unreadable after failed re-save: %v", err)
	}
}
