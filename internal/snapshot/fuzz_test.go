package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecode throws arbitrary bytes at both snapshot decoders. The
// codec's contract is that a hostile or corrupted file is rejected with
// an error — never a panic, unbounded allocation, or half-built model —
// because decode runs on snapshot installs (PUT /v1/models/{name}/
// snapshot) fed directly by network clients. Seeds include the
// committed golden fixture and small valid artifacts of each kind so
// the fuzzer starts from deep, structurally valid inputs and mutates
// from there.
func FuzzDecode(f *testing.F) {
	if golden, err := os.ReadFile(filepath.Join("testdata", "golden_v1.snap")); err == nil {
		f.Add(golden)
	}
	// A valid f32-kind bundle seed (framing + tagDense32 payloads).
	var f32Seed bytes.Buffer
	if err := EncodeModelF32(&f32Seed, goldenSnapshot(f)); err == nil {
		f.Add(f32Seed.Bytes())
	}
	// Truncation and header-mutation seeds.
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeModel(bytes.NewReader(data)); err == nil {
			// A decode that succeeds must yield a servable model: the
			// validation invariants the registry relies on.
			if m.Model == nil || m.Model.NumStages() < 1 {
				t.Fatalf("DecodeModel returned invalid model without error: %+v", m)
			}
		}
		if sub, err := DecodeSubset(bytes.NewReader(data)); err == nil {
			if sub.Net == nil || len(sub.Hot) < 1 {
				t.Fatalf("DecodeSubset returned invalid subset without error: %+v", sub)
			}
		}
	})
}
