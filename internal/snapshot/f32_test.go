package snapshot

import (
	"bytes"
	"math"
	"testing"

	"eugene/internal/cache"
	"eugene/internal/dataset"
)

// TestModelF32RoundTrip: an f32-encoded bundle must decode (widened),
// re-encode at f32 byte-identically, weigh roughly half its f64 twin,
// and carry weights equal to float32(original).
func TestModelF32RoundTrip(t *testing.T) {
	s := goldenSnapshot(t)
	var f64Buf, f32Buf bytes.Buffer
	if err := EncodeModel(&f64Buf, s); err != nil {
		t.Fatal(err)
	}
	if err := EncodeModelF32(&f32Buf, s); err != nil {
		t.Fatal(err)
	}
	// Dense payloads dominate the file, so f32 must land well under
	// three quarters of the f64 size (exactly half for the payloads;
	// framing and predictor stay fixed cost).
	if f32Buf.Len() >= f64Buf.Len()*3/4 {
		t.Fatalf("f32 bundle is %d bytes vs %d f64 — expected ≈half", f32Buf.Len(), f64Buf.Len())
	}

	got, err := DecodeModel(bytes.NewReader(f32Buf.Bytes()))
	if err != nil {
		t.Fatalf("decoding f32 bundle: %v", err)
	}
	if got.Alpha != s.Alpha {
		t.Fatalf("alpha %v, want %v (calibration stays f64)", got.Alpha, s.Alpha)
	}
	if got.Pred == nil || got.Pred.NumStages() != s.Pred.NumStages() {
		t.Fatal("predictor lost in f32 round trip")
	}
	wantParams := s.Model.Params()
	gotParams := got.Model.Params()
	if len(wantParams) != len(gotParams) {
		t.Fatalf("%d params, want %d", len(gotParams), len(wantParams))
	}
	for i := range wantParams {
		for j := range wantParams[i].Value {
			want := float64(float32(wantParams[i].Value[j]))
			if gotParams[i].Value[j] != want {
				t.Fatalf("param %d[%d] = %v, want float32-rounded %v", i, j, gotParams[i].Value[j], want)
			}
		}
	}

	// Re-encoding the widened model at f32 must reproduce the file.
	var again bytes.Buffer
	if err := EncodeModelF32(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), f32Buf.Bytes()) {
		t.Fatal("f32 re-encode is not byte-identical")
	}
}

// TestKindTagBindingRejected: the artifact kind byte's documented
// meaning (f64 vs f32 payloads) is enforced — a CRC-valid file framed
// as one kind but carrying the other kind's dense tags must not decode.
func TestKindTagBindingRejected(t *testing.T) {
	s := goldenSnapshot(t)
	var f32Buf, f64Buf bytes.Buffer
	if err := EncodeModelF32(&f32Buf, s); err != nil {
		t.Fatal(err)
	}
	if err := EncodeModel(&f64Buf, s); err != nil {
		t.Fatal(err)
	}
	_, body32, err := deframe(bytes.NewReader(f32Buf.Bytes()), kindModelF32)
	if err != nil {
		t.Fatal(err)
	}
	_, body64, err := deframe(bytes.NewReader(f64Buf.Bytes()), kindModel)
	if err != nil {
		t.Fatal(err)
	}
	var mislabeled bytes.Buffer
	if err := frame(&mislabeled, kindModel, body32); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeModel(bytes.NewReader(mislabeled.Bytes())); err == nil {
		t.Fatal("kindModel frame with tagDense32 payloads accepted")
	}
	mislabeled.Reset()
	if err := frame(&mislabeled, kindModelF32, body64); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeModel(bytes.NewReader(mislabeled.Bytes())); err == nil {
		t.Fatal("kindModelF32 frame with tagDense payloads accepted")
	}
}

func TestSubsetF32RoundTrip(t *testing.T) {
	cfg := dataset.SynthConfig{
		Classes: 5, Dim: 10, ModesPerClass: 1,
		TrainSize: 150, TestSize: 50,
		NoiseLo: 0.4, NoiseHi: 1.0, Overlap: 0.1,
	}
	train, _, err := dataset.SynthCIFAR(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cache.TrainSubset(train, []int{1, 3}, 8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var f64Buf, f32Buf bytes.Buffer
	if err := EncodeSubset(&f64Buf, sub); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSubsetF32(&f32Buf, sub); err != nil {
		t.Fatal(err)
	}
	if f32Buf.Len() >= f64Buf.Len()*3/4 {
		t.Fatalf("f32 subset is %d bytes vs %d f64 — expected ≈half", f32Buf.Len(), f64Buf.Len())
	}
	got, err := DecodeSubset(bytes.NewReader(f32Buf.Bytes()))
	if err != nil {
		t.Fatalf("decoding f32 subset: %v", err)
	}
	if len(got.Hot) != len(sub.Hot) {
		t.Fatalf("%d hot classes, want %d", len(got.Hot), len(sub.Hot))
	}
	// Same class decisions on the original inputs, confidences within
	// f32 tolerance.
	for _, x := range sampleInputs(sub.InputWidth(), 20, 99) {
		wc, wconf, wother := sub.Predict(x)
		gc, gconf, gother := got.Predict(x)
		if wc != gc || wother != gother {
			t.Fatalf("f32 subset predicts (%d,%v), want (%d,%v)", gc, gother, wc, wother)
		}
		if d := math.Abs(wconf - gconf); d > 1e-4 {
			t.Fatalf("subset conf %v, want ≈ %v (Δ %v)", gconf, wconf, d)
		}
	}
}
