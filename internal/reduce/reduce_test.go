package reduce

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eugene/internal/nn"
	"eugene/internal/tensor"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 7, 5)
	// Zero some entries.
	for i := 0; i < len(m.Data); i += 3 {
		m.Data[i] = 0
	}
	c := FromDense(m, 0)
	back := c.ToDense()
	for i := range m.Data {
		if back.Data[i] != m.Data[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

// TestCSRMatVecMatchesDense is the core correctness property, checked
// over random matrices and sparsity levels.
func TestCSRMatVecMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(20)
		cols := 2 + rng.Intn(20)
		m := randomMatrix(rng, rows, cols)
		eps := rng.Float64()
		c := FromDense(m, eps)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		// Dense reference over the thresholded matrix.
		th := m.Clone()
		for i, v := range th.Data {
			if math.Abs(v) <= eps {
				th.Data[i] = 0
			}
		}
		DenseMatVec(want, th, x)
		got := make([]float64, rows)
		c.MatVec(got, x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSparsity(t *testing.T) {
	m := tensor.NewMatrix(4, 4)
	m.Set(0, 0, 5)
	m.Set(3, 3, -5)
	c := FromDense(m, 0)
	if c.NNZ() != 2 {
		t.Fatalf("NNZ = %d", c.NNZ())
	}
	if got := c.Sparsity(); math.Abs(got-14.0/16) > 1e-12 {
		t.Fatalf("sparsity = %v", got)
	}
}

func TestMagnitudeThreshold(t *testing.T) {
	m := tensor.FromSlice(1, 4, []float64{0.1, -0.2, 0.3, -0.4})
	th, err := MagnitudeThreshold(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c := FromDense(m, th)
	if c.NNZ() != 2 {
		t.Fatalf("50%% prune kept %d of 4", c.NNZ())
	}
	// The two largest magnitudes must survive.
	d := c.ToDense()
	if d.Data[2] != 0.3 || d.Data[3] != -0.4 {
		t.Fatalf("wrong survivors: %v", d.Data)
	}
	if _, err := MagnitudeThreshold(m, 1.0); err == nil {
		t.Fatal("expected sparsity-range error")
	}
	th0, _ := MagnitudeThreshold(m, 0)
	if th0 != 0 {
		t.Fatalf("zero sparsity threshold = %v", th0)
	}
}

func TestEdgePrune(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := nn.NewDense(rng, 32, 32)
	c, err := EdgePrune(d, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Sparsity()
	if got < 0.75 || got > 0.85 {
		t.Fatalf("sparsity = %v, want ≈0.8", got)
	}
	rep := EdgeReport(d, c)
	if rep.ParamsBefore != 32*32+32 {
		t.Fatalf("params before = %d", rep.ParamsBefore)
	}
	// CSR at 80% sparsity stores ~2·0.2·1024 + 33 + 32 ≈ 475 words:
	// storage does NOT shrink 5×, illustrating the paper's overhead
	// point.
	if rep.StorageRatio < 0.2 || rep.StorageRatio > 0.6 {
		t.Fatalf("storage ratio = %v", rep.StorageRatio)
	}
}

func TestNodeScoreAndPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d1 := nn.NewDense(rng, 6, 8)
	d2 := nn.NewDense(rng, 8, 4)
	// Make hidden unit 5 overwhelmingly important and unit 2 dead.
	for c := 0; c < 6; c++ {
		d1.W.Set(5, c, 10)
		d1.W.Set(2, c, 0)
	}
	for r := 0; r < 4; r++ {
		d2.W.Set(r, 2, 0)
	}
	scores, err := NodeScore(d1.W, d2.W)
	if err != nil {
		t.Fatal(err)
	}
	maxIdx, _ := tensor.ArgMax(scores)
	if maxIdx != 5 {
		t.Fatalf("most important unit = %d, want 5", maxIdx)
	}
	n1, n2, kept, err := NodePrune(d1, d2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n1.Out != 4 || n2.In != 4 {
		t.Fatalf("pruned dims %d/%d", n1.Out, n2.In)
	}
	foundFive, foundTwo := false, false
	for _, h := range kept {
		if h == 5 {
			foundFive = true
		}
		if h == 2 {
			foundTwo = true
		}
	}
	if !foundFive || foundTwo {
		t.Fatalf("kept %v: must keep 5 and drop 2", kept)
	}
	rep := NodeReport(d1, d2, n1, n2)
	if rep.ParamsAfter >= rep.ParamsBefore {
		t.Fatalf("node pruning did not shrink: %+v", rep)
	}
}

// TestNodePrunePreservesKeptComputation: for inputs that only excite
// kept units, the pruned pair computes identical outputs (up to the
// dropped units' bias contributions, which we zero here).
func TestNodePrunePreservesKeptComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d1 := nn.NewDense(rng, 5, 10)
	d2 := nn.NewDense(rng, 10, 3)
	for i := range d1.B {
		d1.B[i] = 0
	}
	// Zero out the bottom half of hidden units entirely.
	for h := 0; h < 5; h++ {
		for c := 0; c < 5; c++ {
			d1.W.Set(h, c, 0)
		}
		for r := 0; r < 3; r++ {
			d2.W.Set(r, h, 0)
		}
	}
	n1, n2, _, err := NodePrune(d1, d2, 5)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(1, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	// Full path (no activation for exactness).
	h := d1.Forward(x, false)
	full := d2.Forward(h.Clone(), false).Clone()
	hp := n1.Forward(x, false)
	pruned := n2.Forward(hp.Clone(), false)
	for i := range full.Data {
		if math.Abs(full.Data[i]-pruned.Data[i]) > 1e-9 {
			t.Fatalf("output %d differs: %v vs %v", i, full.Data[i], pruned.Data[i])
		}
	}
}

func TestNodePruneErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d1 := nn.NewDense(rng, 4, 6)
	d2 := nn.NewDense(rng, 6, 2)
	if _, _, _, err := NodePrune(d1, d2, 0); err == nil {
		t.Fatal("expected keep-range error")
	}
	if _, _, _, err := NodePrune(d1, d2, 7); err == nil {
		t.Fatal("expected keep-range error")
	}
	bad := nn.NewDense(rng, 5, 2)
	if _, _, _, err := NodePrune(d1, bad, 2); err == nil {
		t.Fatal("expected chain error")
	}
	if _, err := NodeScore(d1.W, bad.W); err == nil {
		t.Fatal("expected score dim error")
	}
}

// BenchmarkSparseVsDenseMatVec quantifies the paper's sparse-overhead
// claim: run with -bench to compare.
func BenchmarkSparseVsDenseMatVec(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const n = 256
	m := randomMatrix(rng, n, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, n)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DenseMatVec(dst, m, x)
		}
	})
	for _, sp := range []float64{0.5, 0.8, 0.95} {
		th, _ := MagnitudeThreshold(m, sp)
		c := FromDense(m, th)
		b.Run("sparse"+sparsityLabel(sp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.MatVec(dst, x)
			}
		})
	}
}

func sparsityLabel(sp float64) string {
	switch sp {
	case 0.5:
		return "50"
	case 0.8:
		return "80"
	case 0.95:
		return "95"
	default:
		return "x"
	}
}
