// Package reduce implements Eugene's model-reduction service (paper
// Section II-B, after DeepIoT [5]): magnitude-based edge pruning that
// yields sparse matrices, node pruning that yields smaller dense
// matrices, and the compressed-sparse-row machinery needed to
// demonstrate the paper's claim that sparse-matrix savings do not scale
// proportionally with the zero fraction, while node removal does.
package reduce

import (
	"fmt"
	"math"
	"sort"

	"eugene/internal/nn"
	"eugene/internal/tensor"
)

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// FromDense builds a CSR matrix keeping entries with |v| > eps.
func FromDense(m *tensor.Matrix, eps float64) *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int, m.Rows+1),
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for col, v := range row {
			if math.Abs(v) > eps {
				c.ColIdx = append(c.ColIdx, col)
				c.Val = append(c.Val, v)
			}
		}
		c.RowPtr[r+1] = len(c.Val)
	}
	return c
}

// NNZ returns the number of stored non-zeros.
func (c *CSR) NNZ() int { return len(c.Val) }

// Sparsity returns the fraction of zero entries.
func (c *CSR) Sparsity() float64 {
	total := c.Rows * c.Cols
	if total == 0 {
		return 0
	}
	return 1 - float64(c.NNZ())/float64(total)
}

// MatVec computes dst = C·x.
func (c *CSR) MatVec(dst, x []float64) {
	if len(x) != c.Cols || len(dst) != c.Rows {
		panic(fmt.Sprintf("reduce: MatVec dims %d→%d for %dx%d", len(x), len(dst), c.Rows, c.Cols))
	}
	for r := 0; r < c.Rows; r++ {
		var sum float64
		for i := c.RowPtr[r]; i < c.RowPtr[r+1]; i++ {
			sum += c.Val[i] * x[c.ColIdx[i]]
		}
		dst[r] = sum
	}
}

// ToDense converts back to a dense matrix (for tests).
func (c *CSR) ToDense() *tensor.Matrix {
	m := tensor.NewMatrix(c.Rows, c.Cols)
	for r := 0; r < c.Rows; r++ {
		for i := c.RowPtr[r]; i < c.RowPtr[r+1]; i++ {
			m.Set(r, c.ColIdx[i], c.Val[i])
		}
	}
	return m
}

// DenseMatVec is the dense reference dst = M·x used for timing
// comparisons.
func DenseMatVec(dst []float64, m *tensor.Matrix, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("reduce: DenseMatVec dims %d→%d for %dx%d", len(x), len(dst), m.Rows, m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var sum float64
		for c, v := range row {
			sum += v * x[c]
		}
		dst[r] = sum
	}
}

// MagnitudeThreshold returns the |value| cutting the matrix to the given
// sparsity (fraction of entries removed).
func MagnitudeThreshold(m *tensor.Matrix, sparsity float64) (float64, error) {
	if sparsity < 0 || sparsity >= 1 {
		return 0, fmt.Errorf("reduce: sparsity %v outside [0,1)", sparsity)
	}
	mags := make([]float64, len(m.Data))
	for i, v := range m.Data {
		mags[i] = math.Abs(v)
	}
	sort.Float64s(mags)
	k := int(sparsity * float64(len(mags)))
	if k == 0 {
		return 0, nil
	}
	if k >= len(mags) {
		k = len(mags) - 1
	}
	return mags[k-1], nil
}

// EdgePrune removes the smallest-magnitude fraction of weights from a
// dense layer, returning the resulting sparse representation. This is
// the approach the paper critiques: storage shrinks, but computation
// does not shrink proportionally.
func EdgePrune(d *nn.Dense, sparsity float64) (*CSR, error) {
	th, err := MagnitudeThreshold(d.W, sparsity)
	if err != nil {
		return nil, err
	}
	return FromDense(d.W, th), nil
}

// NodeScore ranks hidden units of a Dense→activation→Dense block by the
// L2 energy of their incoming and outgoing weights (a simple stand-in
// for DeepIoT's compressor-critic importance).
func NodeScore(w1, w2 *tensor.Matrix) ([]float64, error) {
	// w1 is hidden×in (incoming rows); w2 is out×hidden (outgoing cols).
	if w1.Rows != w2.Cols {
		return nil, fmt.Errorf("reduce: hidden dim mismatch %d vs %d", w1.Rows, w2.Cols)
	}
	scores := make([]float64, w1.Rows)
	for h := 0; h < w1.Rows; h++ {
		var s float64
		for _, v := range w1.Row(h) {
			s += v * v
		}
		for r := 0; r < w2.Rows; r++ {
			v := w2.At(r, h)
			s += v * v
		}
		scores[h] = s
	}
	return scores, nil
}

// NodePrune shrinks a Dense(in→hidden) / Dense(hidden→out) pair to the
// keep highest-scoring hidden units, returning new dense layers with
// smaller dimensions — the paper's preferred reduction: the result is
// still dense, so standard dense algebra gets the full speedup.
func NodePrune(d1, d2 *nn.Dense, keep int) (*nn.Dense, *nn.Dense, []int, error) {
	if keep < 1 || keep > d1.Out {
		return nil, nil, nil, fmt.Errorf("reduce: keep %d outside [1,%d]", keep, d1.Out)
	}
	if d1.Out != d2.In {
		return nil, nil, nil, fmt.Errorf("reduce: layer widths %d→%d don't chain", d1.Out, d2.In)
	}
	scores, err := NodeScore(d1.W, d2.W)
	if err != nil {
		return nil, nil, nil, err
	}
	type hs struct {
		h int
		s float64
	}
	ranked := make([]hs, len(scores))
	for h, s := range scores {
		ranked[h] = hs{h, s}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].s > ranked[j].s })
	kept := make([]int, keep)
	for i := 0; i < keep; i++ {
		kept[i] = ranked[i].h
	}
	sort.Ints(kept)

	n1 := &nn.Dense{
		In: d1.In, Out: keep,
		W:     tensor.NewMatrix(keep, d1.In),
		B:     make([]float64, keep),
		GradW: tensor.NewMatrix(keep, d1.In),
		GradB: make([]float64, keep),
	}
	n2 := &nn.Dense{
		In: keep, Out: d2.Out,
		W:     tensor.NewMatrix(d2.Out, keep),
		B:     append([]float64(nil), d2.B...),
		GradW: tensor.NewMatrix(d2.Out, keep),
		GradB: make([]float64, d2.Out),
	}
	for i, h := range kept {
		copy(n1.W.Row(i), d1.W.Row(h))
		n1.B[i] = d1.B[h]
		for r := 0; r < d2.Out; r++ {
			n2.W.Set(r, i, d2.W.At(r, h))
		}
	}
	return n1, n2, kept, nil
}

// Report summarizes a reduction.
type Report struct {
	ParamsBefore int
	ParamsAfter  int
	// StorageRatio is ParamsAfter/ParamsBefore (for CSR, counting
	// index storage at one word per non-zero).
	StorageRatio float64
}

// EdgeReport builds a Report for an edge-pruned layer; CSR storage
// counts value + column index per non-zero plus row pointers.
func EdgeReport(d *nn.Dense, c *CSR) Report {
	before := d.In*d.Out + d.Out
	after := 2*c.NNZ() + len(c.RowPtr) + d.Out
	return Report{
		ParamsBefore: before,
		ParamsAfter:  after,
		StorageRatio: float64(after) / float64(before),
	}
}

// NodeReport builds a Report for a node-pruned pair.
func NodeReport(d1, d2, n1, n2 *nn.Dense) Report {
	before := d1.In*d1.Out + d1.Out + d2.In*d2.Out + d2.Out
	after := n1.In*n1.Out + n1.Out + n2.In*n2.Out + n2.Out
	return Report{
		ParamsBefore: before,
		ParamsAfter:  after,
		StorageRatio: float64(after) / float64(before),
	}
}
